"""Unit tests for the tracer's interval arithmetic."""

from repro.simulator import Tracer


def make_tracer(records):
    tr = Tracer(enabled=True)
    for rec in records:
        tr.record(*rec)
    return tr


class TestTracer:
    def test_disabled_records_nothing(self):
        tr = Tracer(enabled=False)
        tr.record(0, 1, 0, "cpu")
        assert tr.records == []

    def test_total_time(self):
        tr = make_tracer([(0, 5, 0, "cpu"), (3, 9, 0, "cpu"), (0, 2, 0, "wire")])
        assert tr.total_time("cpu") == 11.0
        assert tr.total_time("wire") == 2.0

    def test_total_time_filters_node(self):
        tr = make_tracer([(0, 5, 0, "cpu"), (0, 3, 1, "cpu")])
        assert tr.total_time("cpu", node=0) == 5.0
        assert tr.total_time("cpu", node=1) == 3.0

    def test_busy_time_merges_overlaps(self):
        tr = make_tracer([(0, 5, 0, "cpu"), (3, 9, 0, "cpu"), (20, 21, 0, "cpu")])
        assert tr.busy_time("cpu") == 10.0

    def test_busy_time_touching_intervals(self):
        tr = make_tracer([(0, 5, 0, "cpu"), (5, 8, 0, "cpu")])
        assert tr.busy_time("cpu") == 8.0

    def test_busy_time_empty(self):
        tr = Tracer(enabled=True)
        assert tr.busy_time("cpu") == 0.0

    def test_overlap_time(self):
        tr = make_tracer(
            [
                (0, 10, 0, "pack"),
                (5, 15, 0, "wire"),
                (20, 30, 0, "pack"),
                (25, 26, 0, "wire"),
            ]
        )
        assert tr.overlap_time("pack", "wire") == 6.0

    def test_overlap_time_disjoint(self):
        tr = make_tracer([(0, 5, 0, "pack"), (5, 10, 0, "wire")])
        assert tr.overlap_time("pack", "wire") == 0.0

    def test_clear(self):
        tr = make_tracer([(0, 5, 0, "cpu")])
        tr.clear()
        assert tr.records == []

    def test_record_fields(self):
        tr = make_tracer([(1.0, 2.0, 3, "reg", "mr0", {"pages": 4})])
        rec = tr.records[0]
        assert rec.duration == 1.0
        assert rec.node == 3
        assert rec.detail == "mr0"
        assert rec.meta == {"pages": 4}

    def test_summary(self):
        tr = make_tracer([(0, 5, 0, "cpu"), (3, 9, 0, "cpu"), (0, 2, 1, "wire")])
        s = tr.summary()
        assert s["cpu"]["total"] == 11.0
        assert s["cpu"]["busy"] == 9.0
        assert s["cpu"]["count"] == 2
        assert s["wire"]["count"] == 1
        s0 = tr.summary(node=0)
        assert "wire" not in s0

    def test_to_csv(self, tmp_path):
        import csv

        tr = make_tracer([(0.0, 5.0, 0, "cpu", "pack")])
        path = str(tmp_path / "t" / "trace.csv")
        tr.to_csv(path)
        rows = list(csv.reader(open(path)))
        assert rows[0] == ["start", "end", "node", "category", "detail"]
        assert rows[1] == ["0.0", "5.0", "0", "cpu", "pack"]
