"""Property test: the stripe address mapping is a bijection.

Every global file offset maps to exactly one (server, local) location,
distinct offsets never collide, and the mapping round-trips through the
inverse formula — the invariant `StorageCluster.file_bytes` and all
striped I/O rest on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io.client import StripedHandle
from repro.io.server import FileHandle


def make_handle(nservers: int, stripe: int, size: int) -> StripedHandle:
    parts = {
        sid: FileHandle("f", 0, size, 1)  # addr/rkey irrelevant to locate
        for sid in range(nservers)
    }
    return StripedHandle("f", size, stripe, parts)


class TestLocateProperty:
    @given(
        nservers=st.integers(1, 5),
        stripe=st.sampled_from([256, 1024, 4096]),
        offsets=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_bijection(self, nservers, stripe, offsets):
        fh = make_handle(nservers, stripe, 2 << 20)
        seen = {}
        for off in set(offsets):
            server, local = fh.locate(off)
            assert 0 <= server < nservers
            assert local >= 0
            key = (server, local)
            assert key not in seen, (off, seen[key])
            seen[key] = off
            # inverse: reconstruct the global offset
            stripe_on_server = local // stripe
            global_stripe = stripe_on_server * nservers + server
            back = global_stripe * stripe + (local % stripe)
            assert back == off

    @given(nservers=st.integers(1, 4), stripe=st.sampled_from([512, 2048]))
    @settings(max_examples=30, deadline=None)
    def test_consecutive_offsets_stay_local_within_stripe(self, nservers, stripe):
        fh = make_handle(nservers, stripe, 1 << 20)
        for base in (0, stripe * 3, stripe * 7 + 5):
            s0, l0 = fh.locate(base)
            within = min(stripe - (base % stripe) - 1, 100)
            s1, l1 = fh.locate(base + within)
            assert s0 == s1
            assert l1 - l0 == within
