"""Tests for PVFS-style striping across multiple storage servers."""

import numpy as np
import pytest

from repro import types
from repro.io import StorageCluster


def fill_contig(client, addr, nbytes, seed=3):
    data = np.random.default_rng(seed).integers(0, 255, nbytes, dtype=np.uint8)
    client.node.memory.view(addr, nbytes)[:] = data
    return data


class TestStripeLayout:
    def test_locate(self):
        cluster = StorageCluster(1, nservers=3, stripe_size=1024)

        def prog(io):
            fh = yield from io.open("f", 10 * 1024)
            return fh

        (fh,) = cluster.run(prog)
        assert fh.locate(0) == (0, 0)
        assert fh.locate(1024) == (1, 0)
        assert fh.locate(2048) == (2, 0)
        assert fh.locate(3072) == (0, 1024)  # second stripe on server 0
        assert fh.locate(3072 + 100) == (0, 1124)

    def test_parts_sized_by_share(self):
        cluster = StorageCluster(1, nservers=2, stripe_size=1024)

        def prog(io):
            fh = yield from io.open("f", 3 * 1024)  # 3 stripes: 2 + 1
            return fh

        (fh,) = cluster.run(prog)
        assert fh.parts[0].size == 2048
        assert fh.parts[1].size == 1024


class TestStripedData:
    @pytest.mark.parametrize("nservers", [2, 3])
    @pytest.mark.parametrize("strategy", ["rdma", "pack"])
    def test_write_reassembles(self, nservers, strategy):
        nbytes = 300 * 1024  # spans many stripes, non-multiple of stripe
        dt = types.contiguous(nbytes, types.BYTE)
        cluster = StorageCluster(1, nservers=nservers, stripe_size=64 * 1024)
        client = cluster.clients[0]
        addr = client.node.memory.alloc(nbytes)
        data = fill_contig(client, addr, nbytes)

        def prog(io):
            fh = yield from io.open("f", nbytes)
            yield from io.write(fh, 0, addr, dt, strategy=strategy)

        cluster.run(prog)
        assert np.array_equal(cluster.file_bytes("f", nbytes), data)
        # data genuinely spread: every server got nonzero traffic
        for server in cluster.servers:
            assert server.node.hca.bytes_injected >= 0  # reads: none
            assert (server.file_view("f") != 0).any()

    @pytest.mark.parametrize("strategy", ["rdma", "pack"])
    def test_striped_roundtrip_noncontiguous(self, strategy):
        dt = types.vector(512, 128, 256, types.INT)  # 256 KB in 512 blocks
        cluster = StorageCluster(1, nservers=2, stripe_size=32 * 1024)
        client = cluster.clients[0]
        src = client.node.memory.alloc(dt.extent + 64)
        dst = client.node.memory.alloc(dt.extent + 64)
        flat = dt.flatten(1)
        stream = np.random.default_rng(9).integers(0, 255, dt.size, dtype=np.uint8)
        pos = 0
        for off, ln in flat.blocks():
            client.node.memory.view(src + off, ln)[:] = stream[pos : pos + ln]
            pos += ln

        def prog(io):
            fh = yield from io.open("f", dt.size)
            yield from io.write(fh, 0, src, dt, strategy=strategy)
            yield from io.read(fh, 0, dst, dt, strategy=strategy)

        cluster.run(prog)
        got = np.concatenate(
            [client.node.memory.view(dst + off, ln) for off, ln in flat.blocks()]
        )
        assert np.array_equal(got, stream)

    def test_unaligned_offset_write(self):
        cluster = StorageCluster(1, nservers=2, stripe_size=4096)
        nbytes = 8192
        dt = types.contiguous(nbytes, types.BYTE)
        client = cluster.clients[0]
        addr = client.node.memory.alloc(nbytes)
        data = fill_contig(client, addr, nbytes, seed=11)

        def prog(io):
            fh = yield from io.open("f", 32 * 1024)
            yield from io.write(fh, 1000, addr, dt)  # crosses stripes oddly

        cluster.run(prog)
        whole = cluster.file_bytes("f", 32 * 1024)
        assert np.array_equal(whole[1000 : 1000 + nbytes], data)
        assert (whole[:1000] == 0).all()

    def test_commit_reaches_every_server(self):
        cluster = StorageCluster(1, nservers=3, stripe_size=1024)
        nbytes = 6 * 1024
        dt = types.contiguous(nbytes, types.BYTE)
        client = cluster.clients[0]
        addr = client.node.memory.alloc(nbytes)

        def prog(io):
            fh = yield from io.open("f", nbytes)
            yield from io.write(fh, 0, addr, dt)

        cluster.run(prog)
        for server in cluster.servers:
            assert server.commits == [(1, "f", nbytes)]


class TestStripingPerformance:
    def test_reads_scale_with_servers(self):
        """Read responses stream from multiple server HCAs concurrently,
        so striped reads finish faster than single-server reads."""
        nbytes = 2 << 20  # 2 MB
        dt = types.contiguous(nbytes, types.BYTE)

        def run_one(nservers):
            cluster = StorageCluster(1, nservers=nservers, stripe_size=256 * 1024)
            client = cluster.clients[0]
            addr = client.node.memory.alloc(nbytes)

            def prog(io):
                fh = yield from io.open("f", nbytes)
                yield from io.write(fh, 0, addr, dt)
                t0 = io.sim.now
                yield from io.read(fh, 0, addr, dt)
                return io.sim.now - t0

            return cluster.run(prog)[0]

        one = run_one(1)
        four = run_one(4)
        assert four < one * 0.5

    def test_multiple_clients_spread_load(self):
        """Two clients writing different files hit different server
        bottlenecks; aggregate time beats a single serialized server."""
        nbytes = 1 << 20
        dt = types.contiguous(nbytes, types.BYTE)

        def run_one(nservers):
            cluster = StorageCluster(2, nservers=nservers, stripe_size=256 * 1024)
            addrs = [c.node.memory.alloc(nbytes) for c in cluster.clients]

            def make_prog(idx):
                def prog(io):
                    fh = yield from io.open(f"f{idx}", nbytes)
                    yield from io.write(fh, 0, addrs[idx], dt)
                    t0 = io.sim.now
                    yield from io.read(fh, 0, addrs[idx], dt)
                    return io.sim.now - t0

                return prog

            return max(cluster.run([make_prog(i) for i in range(2)]))

        assert run_one(2) < run_one(1)
