"""Tests for the noncontiguous file I/O subpackage."""

import numpy as np
import pytest

from repro import types
from repro.io import StorageCluster
from repro.simulator import SimulationError

VEC = types.vector(64, 32, 128, types.INT)  # 8 KB data in 64 blocks


def fill(client, addr, dt, seed=5):
    flat = dt.flatten(1)
    stream = np.random.default_rng(seed).integers(0, 255, dt.size, dtype=np.uint8)
    pos = 0
    for off, ln in flat.blocks():
        client.node.memory.view(addr + off, ln)[:] = stream[pos : pos + ln]
        pos += ln
    return stream


class TestWriteRead:
    @pytest.mark.parametrize("strategy", ["rdma", "pack"])
    def test_write_lands_packed_in_file(self, strategy):
        cluster = StorageCluster(1)
        client = cluster.clients[0]
        addr = client.node.memory.alloc(VEC.extent + 64)
        stream = fill(client, addr, VEC)

        def prog(io):
            fh = yield from io.open("f", VEC.size)
            n = yield from io.write(fh, 0, addr, VEC, strategy=strategy)
            return n

        (n,) = cluster.run(prog)
        assert n == VEC.size
        assert np.array_equal(cluster.file_bytes("f", VEC.size), stream)
        assert cluster.server.commits == [(1, "f", VEC.size)]

    @pytest.mark.parametrize("strategy", ["rdma", "pack"])
    def test_read_scatters_into_user_blocks(self, strategy):
        cluster = StorageCluster(1)
        client = cluster.clients[0]
        addr = client.node.memory.alloc(VEC.extent + 64)

        def prog(io):
            fh = yield from io.open("f", VEC.size)
            # server-side file contents written directly (test fixture)
            cluster.server.file_view("f")[:VEC.size] = np.arange(VEC.size) % 251
            n = yield from io.read(fh, 0, addr, VEC, strategy=strategy)
            return n

        (n,) = cluster.run(prog)
        assert n == VEC.size
        flat = VEC.flatten(1)
        got = np.concatenate(
            [client.node.memory.view(addr + off, ln) for off, ln in flat.blocks()]
        )
        assert np.array_equal(got, np.arange(VEC.size) % 251)

    def test_roundtrip_cross_strategy(self):
        """Data written with rdma reads back identically with pack."""
        cluster = StorageCluster(1)
        client = cluster.clients[0]
        src = client.node.memory.alloc(VEC.extent + 64)
        dst = client.node.memory.alloc(VEC.extent + 64)
        stream = fill(client, src, VEC)

        def prog(io):
            fh = yield from io.open("f", VEC.size)
            yield from io.write(fh, 0, src, VEC, strategy="rdma")
            yield from io.read(fh, 0, dst, VEC, strategy="pack")

        cluster.run(prog)
        flat = VEC.flatten(1)
        got = np.concatenate(
            [client.node.memory.view(dst + off, ln) for off, ln in flat.blocks()]
        )
        assert np.array_equal(got, stream)

    def test_file_offset(self):
        cluster = StorageCluster(1)
        client = cluster.clients[0]
        dt = types.contiguous(256, types.INT)
        addr = client.node.memory.alloc(dt.extent)
        client.node.memory.view(addr, dt.extent)[:] = 9

        def prog(io):
            fh = yield from io.open("f", 4096)
            yield from io.write(fh, 1024, addr, dt)

        cluster.run(prog)
        view = cluster.server.file_view("f")
        assert (view[:1024] == 0).all()
        assert (view[1024 : 1024 + 1024] == 9).all()

    def test_out_of_bounds_rejected(self):
        cluster = StorageCluster(1)
        client = cluster.clients[0]
        dt = types.contiguous(1024, types.INT)
        addr = client.node.memory.alloc(dt.extent)

        def prog(io):
            fh = yield from io.open("small", 100)
            yield from io.write(fh, 0, addr, dt)

        with pytest.raises(SimulationError, match="beyond file"):
            cluster.run(prog)

    def test_bad_strategy(self):
        cluster = StorageCluster(1)
        client = cluster.clients[0]
        addr = client.node.memory.alloc(VEC.extent + 64)

        def prog(io):
            fh = yield from io.open("f", VEC.size)
            yield from io.write(fh, 0, addr, VEC, strategy="tachyon")

        with pytest.raises(ValueError):
            cluster.run(prog)


class TestNamespace:
    def test_reopen_returns_same_extent(self):
        cluster = StorageCluster(1)

        def prog(io):
            a = yield from io.open("f", 4096)
            b = yield from io.open("f", 4096)
            return a, b

        ((a, b),) = cluster.run(prog)
        assert a.parts[0].addr == b.parts[0].addr

    def test_two_files_disjoint(self):
        cluster = StorageCluster(1)

        def prog(io):
            a = yield from io.open("a", 4096)
            b = yield from io.open("b", 4096)
            return a, b

        ((a, b),) = cluster.run(prog)
        pa, pb = a.parts[0], b.parts[0]
        assert pa.addr + pa.size <= pb.addr or pb.addr + pb.size <= pa.addr


class TestMultipleClients:
    def test_concurrent_writers_to_disjoint_files(self):
        cluster = StorageCluster(3)
        dt = types.contiguous(8192, types.INT)
        addrs = []
        for client in cluster.clients:
            addr = client.node.memory.alloc(dt.extent)
            client.node.memory.view(addr, dt.extent)[:] = client.client_id
            addrs.append(addr)

        def make_prog(idx):
            def prog(io):
                fh = yield from io.open(f"f{idx}", dt.size)
                yield from io.write(fh, 0, addrs[idx], dt)

            return prog

        cluster.run([make_prog(i) for i in range(3)])
        for i, client in enumerate(cluster.clients):
            assert (cluster.file_bytes(f"f{i}", dt.size) == client.client_id).all()

    def test_server_cpu_untouched_by_data(self):
        """The data path is one-sided: the server CPU time is bounded by
        control handling regardless of data volume."""
        dt_small = types.contiguous(16384, types.INT)  # 64 KB
        dt_big = types.contiguous(1 << 20, types.INT)  # 4 MB

        def run_one(dt):
            cluster = StorageCluster(1)
            client = cluster.clients[0]
            addr = client.node.memory.alloc(dt.extent)

            def prog(io):
                fh = yield from io.open("f", dt.size)
                yield from io.write(fh, 0, addr, dt)

            cluster.run(prog)
            return cluster.server.node.cpu.busy_time

        assert run_one(dt_big) == pytest.approx(run_one(dt_small))


class TestStrategyPerformance:
    def test_rdma_write_beats_pack_for_large_blocks(self):
        dt = types.vector(32, 4096, 8192, types.INT)  # 16 KB blocks, 512 KB

        def run_one(strategy):
            cluster = StorageCluster(1)
            client = cluster.clients[0]
            addr = client.node.memory.alloc(dt.extent + 64)

            def prog(io):
                fh = yield from io.open("f", dt.size)
                # warm write to absorb registration, then timed write
                yield from io.write(fh, 0, addr, dt, strategy=strategy)
                t0 = io.sim.now
                yield from io.write(fh, 0, addr, dt, strategy=strategy)
                return io.sim.now - t0

            return cluster.run(prog)[0]

        assert run_one("rdma") < run_one("pack")

    def test_rdma_advantage_narrows_for_tiny_blocks(self):
        """With 8-byte blocks the gather path pays per-SGE and
        per-descriptor costs on thousands of entries, so its advantage
        over packing shrinks sharply — the block-size sensitivity that
        makes [33] filter by block size."""

        def run_one(dt, strategy):
            cluster = StorageCluster(1)
            client = cluster.clients[0]
            addr = client.node.memory.alloc(dt.extent + 64)

            def prog(io):
                fh = yield from io.open("f", dt.size)
                yield from io.write(fh, 0, addr, dt, strategy=strategy)
                t0 = io.sim.now
                yield from io.write(fh, 0, addr, dt, strategy=strategy)
                return io.sim.now - t0

            return cluster.run(prog)[0]

        big = types.vector(32, 4096, 8192, types.INT)  # 16 KB blocks
        tiny = types.vector(2048, 2, 8, types.INT)  # 8 B blocks
        big_gain = run_one(big, "pack") / run_one(big, "rdma")
        tiny_gain = run_one(tiny, "pack") / run_one(tiny, "rdma")
        assert tiny_gain < big_gain
        assert tiny_gain < 1.6  # nearly a wash at 8-byte blocks
