"""Tests for noncontiguous file views (MPI_File_set_view-style access,
Ching et al. [6] from the paper's related work)."""

import numpy as np
import pytest

from repro import types
from repro.io import StorageCluster
from repro.simulator import SimulationError


def make_cluster(nservers=1, stripe=64 * 1024):
    return StorageCluster(1, nservers=nservers, stripe_size=stripe)


class TestFileViews:
    @pytest.mark.parametrize("strategy", ["rdma", "pack"])
    def test_strided_file_layout(self, strategy):
        """Write contiguous memory into every other 256-byte run of the
        file (the classic row-of-a-2D-file pattern)."""
        cluster = make_cluster()
        client = cluster.clients[0]
        nbytes = 16 * 1024
        mem_dt = types.contiguous(nbytes, types.BYTE)
        # file view: 256-byte blocks, 512 bytes apart
        file_dt = types.resized(types.contiguous(256, types.BYTE), 0, 512)
        addr = client.node.memory.alloc(nbytes)
        data = np.random.default_rng(1).integers(0, 255, nbytes, dtype=np.uint8)
        client.node.memory.view(addr, nbytes)[:] = data

        def prog(io):
            fh = yield from io.open("f", 64 * 1024)
            n = yield from io.write_view(
                fh, 0, addr, mem_dt, file_dt=file_dt, strategy=strategy
            )
            return n

        (n,) = cluster.run(prog)
        assert n == nbytes
        whole = cluster.file_bytes("f", 64 * 1024)
        for k in range(nbytes // 256):
            blk = whole[k * 512 : k * 512 + 256]
            assert np.array_equal(blk, data[k * 256 : (k + 1) * 256]), k
            gap = whole[k * 512 + 256 : (k + 1) * 512]
            assert (gap == 0).all(), k

    @pytest.mark.parametrize("strategy", ["rdma", "pack"])
    def test_view_roundtrip_noncontig_both_sides(self, strategy):
        """Noncontiguous memory through a noncontiguous view and back."""
        cluster = make_cluster()
        client = cluster.clients[0]
        mem_dt = types.vector(64, 16, 48, types.INT)  # 4 KB over 12 KB span
        file_dt = types.resized(types.contiguous(128, types.BYTE), 0, 384)
        src = client.node.memory.alloc(mem_dt.flatten(1).span + 64)
        dst = client.node.memory.alloc(mem_dt.flatten(1).span + 64)
        flat = mem_dt.flatten(1)
        stream = np.random.default_rng(2).integers(0, 255, mem_dt.size, dtype=np.uint8)
        pos = 0
        for off, ln in flat.blocks():
            client.node.memory.view(src + off, ln)[:] = stream[pos : pos + ln]
            pos += ln

        def prog(io):
            fh = yield from io.open("f", 64 * 1024)
            yield from io.write_view(fh, 0, src, mem_dt, file_dt=file_dt,
                                     strategy=strategy)
            yield from io.read_view(fh, 0, dst, mem_dt, file_dt=file_dt,
                                    strategy=strategy)

        cluster.run(prog)
        got = np.concatenate(
            [client.node.memory.view(dst + off, ln) for off, ln in flat.blocks()]
        )
        assert np.array_equal(got, stream)

    def test_view_across_stripes(self):
        cluster = make_cluster(nservers=2, stripe=4096)
        client = cluster.clients[0]
        nbytes = 8 * 1024
        mem_dt = types.contiguous(nbytes, types.BYTE)
        file_dt = types.resized(types.contiguous(1024, types.BYTE), 0, 2048)  # half-dense
        addr = client.node.memory.alloc(nbytes)
        client.node.memory.view(addr, nbytes)[:] = 7

        def prog(io):
            fh = yield from io.open("f", 32 * 1024)
            yield from io.write_view(fh, 0, addr, mem_dt, file_dt=file_dt)

        cluster.run(prog)
        whole = cluster.file_bytes("f", 32 * 1024)
        for k in range(nbytes // 1024):
            assert (whole[k * 2048 : k * 2048 + 1024] == 7).all(), k
        # both servers hold some of it
        for server in cluster.servers:
            assert (server.file_view("f") == 7).any()

    def test_view_beyond_file_rejected(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        mem_dt = types.contiguous(4096, types.BYTE)
        file_dt = types.resized(types.contiguous(64, types.BYTE), 0, 4096)  # 64x expansion

        def prog(io):
            fh = yield from io.open("tiny", 8 * 1024)
            addr = client.node.memory.alloc(4096)
            yield from io.write_view(fh, 0, addr, mem_dt, file_dt=file_dt)

        with pytest.raises(SimulationError, match="beyond file"):
            cluster.run(prog)

    def test_empty_view_rejected(self):
        cluster = make_cluster()
        client = cluster.clients[0]

        def prog(io):
            fh = yield from io.open("f", 4096)
            addr = client.node.memory.alloc(64)
            yield from io.write_view(
                fh, 0, addr, types.contiguous(64, types.BYTE),
                file_dt=types.contiguous(0, types.BYTE),
            )

        with pytest.raises(ValueError, match="no data"):
            cluster.run(prog)

    def test_view_offset(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        nbytes = 512
        mem_dt = types.contiguous(nbytes, types.BYTE)
        file_dt = types.contiguous(nbytes, types.BYTE)
        addr = client.node.memory.alloc(nbytes)
        client.node.memory.view(addr, nbytes)[:] = 9

        def prog(io):
            fh = yield from io.open("f", 8 * 1024)
            yield from io.write_view(fh, 4096, addr, mem_dt, file_dt=file_dt)

        cluster.run(prog)
        whole = cluster.file_bytes("f", 8 * 1024)
        assert (whole[:4096] == 0).all()
        assert (whole[4096 : 4096 + 512] == 9).all()
