"""End-to-end: an engineered platform must trip the checker, and the
explainer must attribute the violation to the cost category that moved.

The synthetic preset is mellanox_2003 with descriptor posting made
pathologically expensive.  Multi-W posts one RDMA descriptor per
contiguous block, so a 64-column vector pays 64x the inflated cost while
manual pack-then-send posts a handful — a guaranteed
datatype-vs-manual violation whose cause is, by construction,
``descriptor``.  Runtime-registered presets are invisible to sweep
worker processes, so everything here runs with ``jobs=1``.
"""

import pytest

from repro.guidelines import harness
from repro.guidelines.waivers import Waiver, apply_waivers
from repro.ib.costmodel import PRESETS, get_preset, register_preset

PRESET = "test-hot-descriptor"
SCHEMES = ("generic", "multi-w")
LAT_COLS = (64,)
BW_COLS = (64,)


@pytest.fixture(scope="module")
def engineered_results():
    base = get_preset("mellanox_2003")
    register_preset(
        PRESET,
        lambda: base.with_overrides(
            post_descriptor=60.0,
            post_list_first=60.0,
            post_list_extra=60.0,
        ),
    )
    try:
        yield harness.run_check(
            presets=(PRESET,),
            schemes=SCHEMES,
            lat_cols=LAT_COLS,
            bw_cols=BW_COLS,
            jobs=1,
        )
    finally:
        PRESETS.pop(PRESET, None)


def _violation(results):
    hits = [
        r
        for r in results
        if r.guideline == "datatype-vs-manual"
        and r.scheme == "multi-w"
        and r.status == "violation"
    ]
    assert hits, "engineered preset failed to trip datatype-vs-manual"
    return hits[0]


def test_checker_flags_engineered_violation(engineered_results):
    v = _violation(engineered_results)
    assert v.preset == PRESET
    assert v.figure == "fig08"
    assert v.x == 64
    assert v.failing
    assert v.measured["latency_us"] > v.measured["manual_us"]


def test_explainer_names_the_moved_category(engineered_results):
    v = _violation(engineered_results)
    assert v.explanation is not None
    assert v.explanation["moved_category"] == "descriptor"
    assert "[explained: descriptor moved]" in v.detail
    # shares form a distribution over the profiler categories
    shares = v.explanation["shares"]
    assert shares["descriptor"] == max(shares.values())
    assert sum(shares.values()) <= 1.0 + 1e-6


def test_category_pinned_waiver_tracks_the_cause(engineered_results):
    v = _violation(engineered_results)
    v.waived = False
    v.waiver_reason = ""

    # a waiver pinned to the *wrong* category must not silence it
    unused = apply_waivers(
        [v], [Waiver(guideline="datatype-vs-manual", category="copy")]
    )
    assert not v.waived
    assert len(unused) == 1

    # pinned to the explained category, it applies
    unused = apply_waivers(
        [v],
        [
            Waiver(
                guideline="datatype-vs-manual",
                category="descriptor",
                reason="engineered: descriptor cost inflated on purpose",
            )
        ],
    )
    assert v.waived
    assert not v.failing
    assert not unused


def test_non_violating_scheme_checks_still_emitted(engineered_results):
    """The grid covers every (guideline x scheme) cell, pass or not."""
    keys = {(r.guideline, r.scheme) for r in engineered_results}
    assert ("count-monotonic", "generic") in keys
    assert ("count-monotonic", "multi-w") in keys
    assert ("eager-rendezvous-crossover", "bc-spup") in keys
