"""Guidelines-test fixtures: isolate sweeps from checked-in artifacts.

Same rationale as ``tests/bench/conftest.py``: the guidelines harness
runs through the cached sweep runner, which writes relative
``results/...`` paths and a ``.repro-cache/`` cell cache.  Tests must
never read or populate the developer's real copies of either.
"""

import os

import pytest


@pytest.fixture(autouse=True, scope="session")
def guidelines_results_dir(tmp_path_factory):
    """Redirect relative results/ paths into a temp dir for the session."""
    d = tmp_path_factory.mktemp("guidelines-results")
    old = os.environ.get("REPRO_RESULTS_DIR")
    os.environ["REPRO_RESULTS_DIR"] = str(d)
    yield d
    if old is None:
        os.environ.pop("REPRO_RESULTS_DIR", None)
    else:
        os.environ["REPRO_RESULTS_DIR"] = old


@pytest.fixture(autouse=True, scope="session")
def guidelines_cache_dir(tmp_path_factory):
    """Point the sweep result cache away from the repo's .repro-cache/."""
    d = tmp_path_factory.mktemp("guidelines-cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(d)
    yield d
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old
