"""Units for the guideline catalogue and the cost-model preset registry."""

import pytest

from repro.bench.parallel import Cell, cell_key
from repro.guidelines.registry import GUIDELINES, Guideline, guideline
from repro.ib.costmodel import (
    PRESETS,
    CostModel,
    get_preset,
    preset_names,
    preset_provenance,
    register_preset,
)


class TestGuidelineCatalogue:
    def test_expected_guidelines_present(self):
        assert set(GUIDELINES) >= {
            "datatype-vs-manual",
            "count-monotonic",
            "scheme-dominance",
            "eager-rendezvous-crossover",
        }

    def test_entries_are_keyed_by_their_own_name(self):
        for name, g in GUIDELINES.items():
            assert g.name == name
            assert g.title
            assert g.description

    def test_self_consistency_split(self):
        # Traff/Gropp/Thakur self-consistent rules must hold on *any*
        # platform; scheme-dominance is a paper expectation (baseline only)
        assert GUIDELINES["datatype-vs-manual"].self_consistent
        assert GUIDELINES["count-monotonic"].self_consistent
        assert GUIDELINES["eager-rendezvous-crossover"].self_consistent
        assert not GUIDELINES["scheme-dominance"].self_consistent

    def test_lookup(self):
        assert guideline("count-monotonic") is GUIDELINES["count-monotonic"]
        with pytest.raises(KeyError):
            guideline("no-such-guideline")

    def test_guideline_is_immutable(self):
        g = guideline("datatype-vs-manual")
        with pytest.raises(Exception):
            g.tolerance = 1.0

    def test_tolerances_are_sane(self):
        for g in GUIDELINES.values():
            assert isinstance(g, Guideline)
            assert 0.0 <= g.tolerance < 0.5
            assert g.slack_us >= 0.0


class TestPresetRegistry:
    def test_default_lineup_registered(self):
        names = preset_names()
        for expected in (
            "mellanox_2003",
            "hdr_ib_2020",
            "ndr_ib_2023",
            "shared_memory_node",
            "gpu_kernel_pack",
        ):
            assert expected in names

    def test_get_preset_instantiates(self):
        cm = get_preset("hdr_ib_2020")
        assert isinstance(cm, CostModel)
        # fresh instance per call (factories, not singletons)
        assert get_preset("hdr_ib_2020") == cm

    def test_unknown_preset_names_choices(self):
        with pytest.raises(KeyError, match="mellanox_2003"):
            get_preset("infiniband_2099")

    def test_every_preset_has_provenance(self):
        for name in preset_names():
            assert preset_provenance(name), f"{name} lacks a provenance line"

    def test_register_preset_roundtrip(self):
        name = "test-registry-roundtrip"
        try:
            register_preset(
                name, lambda: get_preset("mellanox_2003").with_overrides()
            )
            assert name in preset_names()
            assert isinstance(get_preset(name), CostModel)
        finally:
            PRESETS.pop(name, None)

    def test_preset_eras_are_ordered(self):
        """Newer fabrics must actually be faster in the model."""
        old = get_preset("mellanox_2003")
        hdr = get_preset("hdr_ib_2020")
        ndr = get_preset("ndr_ib_2023")
        assert hdr.wire_bandwidth > old.wire_bandwidth
        assert ndr.wire_bandwidth > hdr.wire_bandwidth
        assert ndr.wire_latency <= hdr.wire_latency <= old.wire_latency

    def test_gpu_preset_models_kernel_launch_in_dt_startup(self):
        """TEMPI packs all blocks in one kernel: the launch cost must be
        charged per pack invocation (dt_startup), not per block."""
        gpu = get_preset("gpu_kernel_pack")
        host = get_preset("mellanox_2003")
        assert gpu.dt_startup > host.dt_startup
        assert gpu.copy_startup < 1.0  # per-block cost stays tiny
        assert gpu.copy_bandwidth > host.copy_bandwidth  # HBM vs DDR


class TestCacheKeyPresetAwareness:
    def test_cache_key_differs_across_presets(self):
        a = cell_key(Cell("fig08", "bc-spup", 64, (("preset", "mellanox_2003"),)))
        b = cell_key(Cell("fig08", "bc-spup", 64, (("preset", "hdr_ib_2020"),)))
        assert a != b

    def test_cache_key_stable_for_same_preset(self):
        cell = Cell("fig08", "bc-spup", 64, (("preset", "ndr_ib_2023"),))
        assert cell_key(cell) == cell_key(cell)

    def test_cache_key_tracks_preset_parameters(self):
        """Recalibrating a registered preset must invalidate its cells."""
        name = "test-cache-key-recal"
        base = get_preset("mellanox_2003")
        try:
            register_preset(name, lambda: base)
            before = cell_key(Cell("fig08", "bc-spup", 64, (("preset", name),)))
            register_preset(
                name, lambda: base.with_overrides(wire_latency=99.0)
            )
            after = cell_key(Cell("fig08", "bc-spup", 64, (("preset", name),)))
            assert before != after
        finally:
            PRESETS.pop(name, None)
