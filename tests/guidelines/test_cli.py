"""CLI and renderer units that need no sweep."""

import json

import pytest

from repro.guidelines import __main__ as cli
from repro.guidelines import report
from repro.guidelines.harness import CheckResult, DEFAULT_PRESETS


def _results():
    ok = CheckResult(
        guideline="count-monotonic",
        preset="mellanox_2003",
        status="pass",
        scheme="bc-spup",
        figure="fig08",
    )
    bad = CheckResult(
        guideline="datatype-vs-manual",
        preset="hdr_ib_2020",
        status="violation",
        scheme="multi-w",
        figure="fig08",
        x=64,
        detail="datatype 64.1us vs manual 38.5us",
        explanation={"moved_category": "registration"},
    )
    waived = CheckResult(
        guideline="datatype-vs-manual",
        preset="mellanox_2003",
        status="violation",
        scheme="generic",
        figure="fig08",
        x=64,
        detail="datatype 245.3us vs manual 229.7us",
        explanation={"moved_category": "copy"},
        waived=True,
        waiver_reason="the paper's Figure 2 motivation",
    )
    shift = CheckResult(
        guideline="scheme-dominance",
        preset="gpu_kernel_pack",
        status="crossover-shift",
        scheme="rwg-up",
        figure="fig09",
        x=512,
        detail="fastest scheme moved",
    )
    return [ok, bad, waived, shift]


class TestRenderers:
    def test_summarize_counts(self):
        s = report.summarize(_results())
        assert s == {
            "checks": 4,
            "passes": 1,
            "violations": 2,
            "crossover_shifts": 1,
            "waived": 1,
            "failing": 1,
        }

    def test_markdown_table_and_waiver_section(self):
        md = report.format_markdown(_results(), ["mellanox_2003"])
        assert "**FAIL**" in md
        assert "| datatype-vs-manual | hdr_ib_2020 | multi-w | 64 |" in md
        assert "registration" in md  # the cause column
        assert "violation (waived)" in md
        assert "## Waiver reasons" in md
        assert "the paper's Figure 2 motivation" in md
        # passes stay out of the table
        assert "bc-spup" not in md

    def test_markdown_all_pass(self):
        ok = _results()[0]
        md = report.format_markdown([ok], ["mellanox_2003"])
        assert "**PASS**" in md
        assert "|" not in md.replace("**", "")  # no table at all

    def test_text_verdict(self):
        txt = report.format_text(_results(), ["mellanox_2003"])
        assert "guidelines check FAILED" in txt
        assert "<- registration" in txt
        ok_only = report.format_text([_results()[0]], ["mellanox_2003"])
        assert "guidelines check passed" in ok_only

    def test_json_doc_roundtrips(self, tmp_path):
        path = tmp_path / "doc.json"
        report.write_json(path, _results(), ["mellanox_2003"])
        doc = json.loads(path.read_text())
        assert doc["schema"] == report.SCHEMA_VERSION
        assert doc["summary"]["failing"] == 1
        assert len(doc["checks"]) == 4


class TestCLI:
    def test_presets_subcommand_lists_lineup(self, capsys):
        assert cli.main(["presets"]) == 0
        out = capsys.readouterr().out
        for name in DEFAULT_PRESETS:
            assert name in out
        # provenance lines ride along
        assert "Mellanox" in out or "2003" in out

    def test_check_defaults(self):
        args = cli.build_parser().parse_args(["check"])
        assert args.presets is None
        assert args.jobs is None
        assert not args.no_cache
        assert not args.no_explain

    def test_command_required(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])
