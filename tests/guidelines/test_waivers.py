"""Units for the waiver (expectations) file: matching, round-trip, drafts."""

import json

import pytest

from repro.guidelines.harness import CheckResult
from repro.guidelines.waivers import (
    SCHEMA_VERSION,
    Waiver,
    apply_waivers,
    load_waivers,
    save_waivers,
    waivers_from_results,
)


def _violation(**kw):
    base = dict(
        guideline="datatype-vs-manual",
        preset="hdr_ib_2020",
        status="violation",
        scheme="multi-w",
        figure="fig08",
        x=64,
        explanation={"moved_category": "registration"},
    )
    base.update(kw)
    return CheckResult(**base)


class TestMatching:
    def test_exact_match(self):
        w = Waiver(
            guideline="datatype-vs-manual",
            preset="hdr_ib_2020",
            scheme="multi-w",
            figure="fig08",
            x="64",
        )
        assert w.matches(_violation())

    def test_wildcards_match_any_coordinate(self):
        assert Waiver().matches(_violation())
        assert Waiver(preset="*", x="*").matches(_violation())

    def test_coordinate_mismatch(self):
        assert not Waiver(scheme="generic").matches(_violation())
        assert not Waiver(x="512").matches(_violation())

    def test_glob_patterns(self):
        assert Waiver(preset="hdr_*").matches(_violation())
        assert Waiver(guideline="datatype-*").matches(_violation())

    def test_only_violations_match(self):
        assert not Waiver().matches(_violation(status="pass"))
        assert not Waiver().matches(_violation(status="crossover-shift"))

    def test_category_pin_requires_explained_cause(self):
        pinned = Waiver(category="registration")
        assert pinned.matches(_violation())
        # cause moved -> the waiver stops applying
        assert not pinned.matches(
            _violation(explanation={"moved_category": "copy"})
        )
        # unexplained violation -> a pinned waiver cannot apply
        assert not pinned.matches(_violation(explanation=None))


class TestApply:
    def test_apply_marks_in_place_and_reports_unused(self):
        hit = _violation()
        miss = _violation(preset="ndr_ib_2023")
        used = Waiver(preset="hdr_ib_2020", reason="known on HDR")
        dangling = Waiver(preset="shared_memory_node")
        unused = apply_waivers([hit, miss], [used, dangling])
        assert hit.waived and hit.waiver_reason == "known on HDR"
        assert not hit.failing
        assert not miss.waived and miss.failing
        assert unused == [dangling]

    def test_first_matching_waiver_wins(self):
        r = _violation()
        first = Waiver(reason="first")
        second = Waiver(reason="second")
        apply_waivers([r], [first, second])
        assert r.waiver_reason == "first"


class TestRoundTrip:
    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "guidelines.json"
        waivers = [
            Waiver(
                guideline="count-monotonic",
                preset="ndr_ib_2023",
                scheme="p-rrs",
                x="64",
                reason="pipeline fill effect",
            ),
            Waiver(guideline="datatype-vs-manual", category="registration"),
        ]
        save_waivers(path, waivers)
        loaded = load_waivers(path)
        assert sorted(loaded, key=repr) == sorted(waivers, key=repr)
        doc = json.loads(path.read_text())
        assert doc["schema"] == SCHEMA_VERSION
        assert doc["note"]

    def test_save_is_deterministic(self, tmp_path):
        ws = [Waiver(guideline="b"), Waiver(guideline="a")]
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        save_waivers(a, ws)
        save_waivers(b, list(reversed(ws)))
        assert a.read_text() == b.read_text()

    def test_missing_file_is_empty(self, tmp_path):
        assert load_waivers(tmp_path / "absent.json") == []

    def test_corrupt_file_fails_loudly(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SystemExit, match="cannot parse"):
            load_waivers(path)

    def test_unknown_fields_ignored_for_forward_compat(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            json.dumps(
                {
                    "schema": SCHEMA_VERSION,
                    "waivers": [
                        {"guideline": "count-monotonic", "added_by": "v99"}
                    ],
                }
            )
        )
        (w,) = load_waivers(path)
        assert w.guideline == "count-monotonic"


class TestDrafts:
    def test_drafts_cover_exactly_the_unwaived_violations(self):
        waived = _violation()
        waived.waived = True
        fresh = _violation(preset="ndr_ib_2023")
        passed = _violation(status="pass")
        drafts = waivers_from_results([waived, fresh, passed])
        assert len(drafts) == 1
        (d,) = drafts
        assert d.preset == "ndr_ib_2023"
        assert d.x == "64"
        assert d.category == "registration"
        assert "TODO" in d.reason
