"""The JSON report must be byte-identical however the sweep ran.

The classifier walks the catalogue in a canonical order over a
``{cell: value}`` dict that the runner completes whatever the worker
count, so serial and parallel sweeps must produce the same document.
The cache is disabled so both runs measure for real rather than the
second trivially replaying the first.
"""

import json

from repro.guidelines import harness, report

PRESETS = ("mellanox_2003",)
SCHEMES = ("generic", "bc-spup")
LAT_COLS = (8, 64)
BW_COLS = (64,)


def _doc(jobs):
    results = harness.run_check(
        presets=PRESETS,
        schemes=SCHEMES,
        lat_cols=LAT_COLS,
        bw_cols=BW_COLS,
        jobs=jobs,
        use_cache=False,
    )
    return report.to_json_doc(results, PRESETS)


def test_serial_and_parallel_reports_identical():
    serial = _doc(jobs=1)
    parallel = _doc(jobs=4)
    assert json.dumps(serial, sort_keys=True) == json.dumps(
        parallel, sort_keys=True
    )


def test_report_shape():
    doc = _doc(jobs=1)
    assert doc["schema"] == report.SCHEMA_VERSION
    assert doc["presets"] == list(PRESETS)
    s = doc["summary"]
    assert s["checks"] == len(doc["checks"])
    assert s["passes"] + s["violations"] + s["crossover_shifts"] == s["checks"]
    # the paper's own Figure 2 result: Generic loses to pack-then-send
    # on the paper's testbed at 64 columns
    generic = [
        c
        for c in doc["checks"]
        if c["guideline"] == "datatype-vs-manual"
        and c["scheme"] == "generic"
        and c["x"] == 64
    ]
    assert generic and generic[0]["status"] == "violation"
