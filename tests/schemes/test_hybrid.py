"""Tests for the hybrid per-piece scheme (the paper's Section 10 future
work: scheme selection "within different parts of a single datatype
message")."""

import numpy as np
import pytest

from repro import Cluster, types
from repro.datatypes.flatten import Flattened
from repro.schemes.hybrid import split_pieces
from tests.mpi.helpers import check_blocks, fill_blocks


def bimodal_datatype(tiny=512, huge=4):
    """``tiny`` 64-byte blocks followed by ``huge`` 128 KB blocks."""
    lengths, disps, pos = [], [], 0
    for _ in range(tiny):
        lengths.append(16)
        disps.append(pos)
        pos += 16 * 4 + 16
    pos = (pos + 4095) // 4096 * 4096
    for _ in range(huge):
        lengths.append(32768)
        disps.append(pos)
        pos += 32768 * 4 + 4096
    return types.hindexed(lengths, disps, types.INT)


def transfer(scheme, dt, iters=1, scheme_options=None):
    span = dt.flatten(1).span + 64

    def rank0(mpi):
        buf = mpi.alloc(span)
        fill_blocks(mpi, buf, dt, 1)
        t0 = mpi.now
        for tag in range(iters):
            yield from mpi.send(buf, dt, 1, dest=1, tag=tag)
        return mpi.now - t0

    def rank1(mpi):
        buf = mpi.alloc(span)
        for tag in range(iters):
            yield from mpi.recv(buf, dt, 1, source=0, tag=tag)
        return check_blocks(mpi, buf, dt, 1)

    cluster = Cluster(2, scheme=scheme, scheme_options=scheme_options or {})
    res = cluster.run([rank0, rank1])
    assert res.values[1] is True
    return res.values[0]


class TestSplitPieces:
    def test_partition_by_threshold(self):
        pieces = [(0, 0, 100), (1, 1, 5000), (2, 2, 4096)]
        direct, packed = split_pieces(pieces, 4096)
        assert direct == [(1, 1, 5000), (2, 2, 4096)]
        assert packed == [(0, 0, 100)]

    def test_all_small(self):
        direct, packed = split_pieces([(0, 0, 10)], 4096)
        assert direct == [] and len(packed) == 1

    def test_all_big(self):
        direct, packed = split_pieces([(0, 0, 10000)], 4096)
        assert len(direct) == 1 and packed == []

    def test_stream_order_preserved(self):
        pieces = [(i, i, 10 + i) for i in range(5)]
        direct, packed = split_pieces(pieces, 12)
        assert packed == [(0, 0, 10), (1, 1, 11)]
        assert direct == [(2, 2, 12), (3, 3, 13), (4, 4, 14)]


class TestCorrectness:
    def test_bimodal(self):
        transfer("hybrid", bimodal_datatype(128, 2))

    def test_all_small_blocks(self):
        transfer("hybrid", types.vector(512, 16, 64, types.INT))

    def test_all_large_blocks(self):
        transfer("hybrid", types.vector(16, 8192, 16384, types.INT))

    def test_asymmetric_layouts(self):
        send_dt = bimodal_datatype(64, 2)
        recv_dt = types.contiguous(send_dt.size // 4, types.INT)
        span_s = send_dt.flatten(1).span + 64
        span_r = recv_dt.extent + 64

        def rank0(mpi):
            buf = mpi.alloc(span_s)
            fill_blocks(mpi, buf, send_dt, 1)
            yield from mpi.send(buf, send_dt, 1, dest=1, tag=0)

        def rank1(mpi):
            buf = mpi.alloc(span_r)
            yield from mpi.recv(buf, recv_dt, 1, source=0, tag=0)
            return check_blocks(mpi, buf, recv_dt, 1)

        res = Cluster(2, scheme="hybrid").run([rank0, rank1])
        assert res.values[1] is True

    # the ref optimization is deliberately disabled under fault injection
    @pytest.mark.faultfree
    def test_repeated_sends_reuse_both_layout_caches(self):
        dt = bimodal_datatype(64, 2)
        cluster = Cluster(2, scheme="hybrid")
        span = dt.flatten(1).span + 64

        def rank0(mpi):
            buf = mpi.alloc(span)
            for tag in range(3):
                yield from mpi.send(buf, dt, 1, dest=1, tag=tag)

        def rank1(mpi):
            buf = mpi.alloc(span)
            for tag in range(3):
                yield from mpi.recv(buf, dt, 1, source=0, tag=tag)

        cluster.run([rank0, rank1])
        # sender's layout shipped once, receiver's layout shipped once
        assert cluster.contexts[0].dt_cache.misses == 1  # receiver layout
        assert cluster.contexts[0].dt_cache.hits == 2
        assert cluster.contexts[1].dt_cache.misses == 1  # sender layout
        assert cluster.contexts[1].dt_cache.hits == 2

    def test_threshold_option(self):
        dt = bimodal_datatype(64, 2)
        transfer("hybrid", dt, scheme_options={"split_threshold": 1024})
        transfer("hybrid", dt, scheme_options={"split_threshold": 1 << 20})


class TestPerformance:
    pytestmark = pytest.mark.faultfree  # asserts timings
    def test_hybrid_beats_all_fixed_on_bimodal(self):
        dt = bimodal_datatype(1024, 6)
        times = {
            s: transfer(s, dt, iters=3)
            for s in ("generic", "bc-spup", "rwg-up", "multi-w", "hybrid")
        }
        best_fixed = min(v for k, v in times.items() if k != "hybrid")
        assert times["hybrid"] < best_fixed

    def test_hybrid_close_to_multiw_when_all_big(self):
        dt = types.vector(16, 16384, 32768, types.INT)  # 64 KB blocks
        hybrid = transfer("hybrid", dt, iters=3)
        multiw = transfer("multi-w", dt, iters=3)
        assert hybrid == pytest.approx(multiw, rel=0.10)

    def test_adaptive_routes_bimodal_to_hybrid(self):
        dt = bimodal_datatype(512, 4)
        cluster = Cluster(2, scheme="adaptive")
        span = dt.flatten(1).span + 64

        def rank0(mpi):
            buf = mpi.alloc(span)
            yield from mpi.send(buf, dt, 1, dest=1, tag=0)

        def rank1(mpi):
            buf = mpi.alloc(span)
            yield from mpi.recv(buf, dt, 1, source=0, tag=0)

        cluster.run([rank0, rank1])
        sel = cluster.contexts[0].get_scheme("adaptive")
        assert list(sel.choices.values()) == ["hybrid"]

    def test_adaptive_hybrid_can_be_disabled(self):
        dt = bimodal_datatype(512, 4)
        cluster = Cluster(
            2, scheme="adaptive", scheme_options={"enable_hybrid": False}
        )
        span = dt.flatten(1).span + 64

        def rank0(mpi):
            buf = mpi.alloc(span)
            yield from mpi.send(buf, dt, 1, dest=1, tag=0)

        def rank1(mpi):
            buf = mpi.alloc(span)
            yield from mpi.recv(buf, dt, 1, source=0, tag=0)

        cluster.run([rank0, rank1])
        sel = cluster.contexts[0].get_scheme("adaptive")
        assert "hybrid" not in sel.choices.values()
