"""Tests for the pre-registered segment-buffer pools (Section 4.3.3)."""

import pytest

from repro.ib import CostModel, Fabric
from repro.schemes.buffers import SegmentPool
from repro.simulator import Simulator


def make_node():
    sim = Simulator()
    fabric = Fabric(sim, CostModel.mellanox_2003())
    return sim, fabric.add_node(256 << 20)


def run(sim, gen):
    p = sim.process(gen)
    sim.run()
    return p.value


class TestSegmentPool:
    def test_pool_acquire_is_free(self):
        sim, node = make_node()
        pool = SegmentPool(node, 1 << 20, 128 * 1024)

        def prog():
            t0 = sim.now
            buf = yield from pool.acquire()
            return buf, sim.now - t0

        buf, dt = run(sim, prog())
        assert dt == 0.0
        assert not buf.dynamic
        assert buf.size == 128 * 1024

    def test_pool_buffers_are_registered(self):
        sim, node = make_node()
        pool = SegmentPool(node, 1 << 20, 128 * 1024)

        def prog():
            buf = yield from pool.acquire()
            node.memory.check_local(buf.addr, buf.size, buf.lkey)
            node.memory.check_remote(buf.addr, buf.size, buf.rkey)
            return True

        assert run(sim, prog())

    def test_release_recycles(self):
        sim, node = make_node()
        pool = SegmentPool(node, 256 * 1024, 128 * 1024)  # 2 segments

        def prog():
            a = yield from pool.acquire()
            b = yield from pool.acquire()
            assert pool.available == 0
            yield from pool.release(a)
            c = yield from pool.acquire()
            return a.addr == c.addr

        assert run(sim, prog())

    def test_exhaustion_falls_back_to_dynamic(self):
        """Section 4.3.3: when the pool is used up, allocate + register
        extra buffers dynamically (charged)."""
        sim, node = make_node()
        pool = SegmentPool(node, 128 * 1024, 128 * 1024)  # 1 segment

        def prog():
            a = yield from pool.acquire()
            t0 = sim.now
            b = yield from pool.acquire()  # dynamic fallback
            cost = sim.now - t0
            return a, b, cost

        a, b, cost = run(sim, prog())
        assert not a.dynamic and b.dynamic
        assert cost >= node.cm.reg_time(128 * 1024)
        assert pool.dynamic_acquires == 1

    def test_dynamic_release_deregisters_beyond_growth_limit(self):
        sim, node = make_node()
        pool = SegmentPool(node, 128 * 1024, 128 * 1024,
                           growth_limit=128 * 1024)  # no growth allowed

        def prog():
            a = yield from pool.acquire()
            b = yield from pool.acquire()
            before = node.memory.registered_bytes
            yield from pool.release(b)
            return before, node.memory.registered_bytes

        before, after = run(sim, prog())
        assert after == before - 128 * 1024

    def test_dynamic_release_absorbed_under_growth_limit(self):
        """Section 4.3.3: extra buffers join the pool, so a second burst
        pays nothing."""
        sim, node = make_node()
        pool = SegmentPool(node, 128 * 1024, 128 * 1024)  # default 8x growth

        def prog():
            a = yield from pool.acquire()
            b = yield from pool.acquire()  # dynamic
            yield from pool.release(b)
            t0 = sim.now
            c = yield from pool.acquire()  # served from absorbed buffer
            return b, c, sim.now - t0

        b, c, dt = run(sim, prog())
        assert dt == 0.0
        assert c.addr == b.addr
        assert not c.dynamic
        assert pool.total_bytes == 256 * 1024

    def test_disabled_pool_always_dynamic(self):
        """The Figure 14 worst case: staging pools off."""
        sim, node = make_node()
        pool = SegmentPool(node, 1 << 20, 128 * 1024, enabled=False)

        def prog():
            buf = yield from pool.acquire()
            return buf

        buf = run(sim, prog())
        assert buf.dynamic
        assert pool.pool_acquires == 0
