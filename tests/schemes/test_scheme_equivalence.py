"""End-to-end property test: every scheme is functionally identical.

Hypothesis generates random (sender layout, receiver layout) pairs of
equal type-signature size; a transfer through every scheme must deposit
the sender's packed stream into the receiver's blocks, bit for bit.
Schemes may only differ in simulated time.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster, types
from repro.ib.costmodel import MB

SCHEMES = ("generic", "bc-spup", "rwg-up", "p-rrs", "multi-w", "hybrid")


@st.composite
def layout_pair(draw):
    """Two datatypes with the same data size but different block shapes."""
    # total size in 4-byte units; spans eager and (small) rendezvous
    total_ints = draw(st.sampled_from([16, 512, 4096]))

    def one_layout():
        kind = draw(st.sampled_from(["vector", "hindexed", "contig"]))
        if kind == "contig":
            return types.contiguous(total_ints, types.INT)
        if kind == "vector":
            # pick a blocklength dividing the total
            divisors = [d for d in (1, 2, 4, 8, 16) if total_ints % d == 0]
            bl = draw(st.sampled_from(divisors))
            count = total_ints // bl
            stride = bl + draw(st.integers(0, 4))
            return types.vector(count, bl, stride, types.INT)
        # hindexed with random gaps, random block sizes summing to total
        lengths, remaining = [], total_ints
        while remaining > 0:
            ln = draw(st.integers(1, remaining))
            lengths.append(ln)
            remaining -= ln
            if len(lengths) >= 12:
                lengths[-1] += remaining
                remaining = 0
        disps, pos = [], 0
        for ln in lengths:
            pos += draw(st.integers(0, 64))
            disps.append(pos)
            pos += ln * 4
        return types.hindexed(lengths, disps, types.INT)

    return one_layout(), one_layout()


class TestSchemeEquivalence:
    @given(layout_pair(), st.sampled_from(SCHEMES))
    @settings(max_examples=40, deadline=None)
    def test_any_scheme_delivers_identical_stream(self, pair, scheme):
        send_dt, recv_dt = pair
        assert send_dt.size == recv_dt.size
        nbytes = send_dt.size
        stream = np.random.default_rng(nbytes).integers(
            0, 255, nbytes, dtype=np.uint8
        )
        span_s = send_dt.flatten(1).span + 64
        span_r = recv_dt.flatten(1).span + 64

        def rank0(mpi):
            buf = mpi.alloc(span_s)
            pos = 0
            for off, ln in send_dt.flatten(1).blocks():
                mpi.node.memory.view(buf + off, ln)[:] = stream[pos : pos + ln]
                pos += ln
            yield from mpi.send(buf, send_dt, 1, dest=1, tag=0)

        def rank1(mpi):
            buf = mpi.alloc(span_r)
            yield from mpi.recv(buf, recv_dt, 1, source=0, tag=0)
            got = np.concatenate(
                [
                    mpi.node.memory.view(buf + off, ln)
                    for off, ln in recv_dt.flatten(1).blocks()
                ]
            ) if recv_dt.flatten(1).nblocks else np.empty(0, np.uint8)
            return bool(np.array_equal(got, stream))

        cluster = Cluster(2, scheme=scheme, memory_per_rank=128 * MB)
        res = cluster.run([rank0, rank1])
        assert res.values[1] is True, f"{scheme} corrupted the stream"
