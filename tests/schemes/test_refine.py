"""Unit + property tests for the Multi-W common-refinement computation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes.flatten import Flattened
from repro.schemes.multiw import refine


def flat(*blocks):
    return Flattened.from_blocks(blocks)


class TestRefine:
    def test_identical_layouts(self):
        f = flat((0, 4), (8, 4))
        pieces = refine(f, 100, f, 200)
        assert pieces == [(100, 200, 4), (108, 208, 4)]

    def test_contiguous_to_blocks(self):
        src = flat((0, 12))
        dst = flat((0, 4), (8, 4), (16, 4))
        pieces = refine(src, 0, dst, 0)
        assert pieces == [(0, 0, 4), (4, 8, 4), (8, 16, 4)]

    def test_blocks_to_contiguous(self):
        src = flat((0, 4), (8, 4))
        dst = flat((0, 8))
        pieces = refine(src, 0, dst, 0)
        assert pieces == [(0, 0, 4), (8, 4, 4)]

    def test_misaligned_split(self):
        src = flat((0, 6), (10, 6))
        dst = flat((0, 4), (8, 8))
        pieces = refine(src, 0, dst, 0)
        # stream: src [0..6),[10..16) ; dst [0..4),[8..16)
        assert pieces == [(0, 0, 4), (4, 8, 2), (10, 10, 6)]

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            refine(flat((0, 4)), 0, flat((0, 8)), 0)

    def test_empty(self):
        assert refine(flat(), 0, flat(), 0) == []

    @st.composite
    @staticmethod
    def two_partitions(draw):
        """Two block lists carving the same total into different pieces."""
        total = draw(st.integers(1, 200))

        def partition():
            blocks, pos, remaining = [], 0, total
            while remaining > 0:
                gap = draw(st.integers(0, 5))
                ln = draw(st.integers(1, remaining))
                pos += gap
                blocks.append((pos, ln))
                pos += ln
                remaining -= ln
            return Flattened.from_blocks(blocks)

        return partition(), partition()

    @given(two_partitions())
    @settings(max_examples=100, deadline=None)
    def test_refinement_properties(self, pair):
        src, dst = pair
        pieces = refine(src, 1000, dst, 5000)
        # total bytes preserved
        assert sum(p[2] for p in pieces) == src.size
        # every piece is inside a source block and a destination block
        src_blocks = [(1000 + o, l) for o, l in src.blocks()]
        dst_blocks = [(5000 + o, l) for o, l in dst.blocks()]
        for s_addr, d_addr, ln in pieces:
            assert any(a <= s_addr and s_addr + ln <= a + l for a, l in src_blocks)
            assert any(a <= d_addr and d_addr + ln <= a + l for a, l in dst_blocks)
        # stream order is preserved: walking pieces covers the source
        # stream in order
        walked = 0
        for s_addr, _d, ln in pieces:
            # position of s_addr in the source stream
            pos = 0
            for a, l in src_blocks:
                if a <= s_addr < a + l:
                    pos += s_addr - a
                    break
                pos += l
            assert pos == walked
            walked += ln

    @given(two_partitions())
    @settings(max_examples=50, deadline=None)
    def test_refinement_moves_stream_correctly(self, pair):
        """Simulated copy through the pieces equals pack->unpack."""
        src, dst = pair
        total_span = max(src.span, dst.span) + 16
        src_mem = np.random.default_rng(0).integers(
            0, 255, total_span, dtype=np.uint8
        )
        dst_mem = np.zeros(total_span, dtype=np.uint8)
        for s_addr, d_addr, ln in refine(src, 0, dst, 0):
            dst_mem[d_addr : d_addr + ln] = src_mem[s_addr : s_addr + ln]
        src_stream = np.concatenate(
            [src_mem[o : o + l] for o, l in src.blocks()]
        ) if src.nblocks else np.empty(0, np.uint8)
        dst_stream = np.concatenate(
            [dst_mem[o : o + l] for o, l in dst.blocks()]
        ) if dst.nblocks else np.empty(0, np.uint8)
        assert np.array_equal(src_stream, dst_stream)
