"""Behavioural tests for scheme-specific mechanisms: the datatype cache
on the wire, list descriptor post, segment unpack, adaptive selection."""

import numpy as np
import pytest

from repro import Cluster, types
from tests.mpi.helpers import check_blocks, fill_blocks


def repeat_transfer(scheme, dt, iters, cluster_kwargs=None, scheme_options=None):
    """Send (dt, 1) from rank0 to rank1 ``iters`` times; returns cluster
    and per-iteration times."""
    cluster = Cluster(
        2, scheme=scheme, scheme_options=scheme_options or {},
        **(cluster_kwargs or {}),
    )
    span = dt.flatten(1).span + 64

    def rank0(mpi):
        a = mpi.alloc(span)
        fill_blocks(mpi, a, dt, 1)
        stamps = []
        for k in range(iters):
            t0 = mpi.now
            yield from mpi.send(a, dt, 1, dest=1, tag=k)
            # wait for an ack so iterations do not pipeline
            ack = mpi.alloc(8)
            yield from mpi.recv(ack, types.contiguous(1, types.INT), 1, source=1, tag=1000 + k)
            stamps.append(mpi.now - t0)
        return stamps

    def rank1(mpi):
        b = mpi.alloc(span)
        ack = mpi.alloc(8)
        for k in range(iters):
            yield from mpi.recv(b, dt, 1, source=0, tag=k)
            yield from mpi.send(ack, types.contiguous(1, types.INT), 1, dest=0, tag=1000 + k)
        check_blocks(mpi, b, dt, 1)
        return True

    res = cluster.run([rank0, rank1])
    assert res.values[1] is True
    return cluster, res.values[0]


BIG_VECTOR = types.vector(128, 512, 4096, types.INT)  # 256 KB, 2 KB blocks


class TestDatatypeCacheOnWire:
    pytestmark = pytest.mark.faultfree  # asserts timings
    def test_second_multiw_send_uses_ref(self):
        cluster, times = repeat_transfer("multi-w", BIG_VECTOR, 3)
        sender = cluster.contexts[0]
        assert sender.dt_cache.misses == 1  # full layout once
        assert sender.dt_cache.hits == 2  # refs afterwards

    def test_cached_layout_is_faster(self):
        _cluster, times = repeat_transfer("multi-w", BIG_VECTOR, 3)
        # first iteration ships the layout + registers buffers
        assert times[0] > times[1]
        assert times[1] == pytest.approx(times[2], rel=0.05)

    def test_different_datatype_resends_layout(self):
        cluster = Cluster(2, scheme="multi-w")
        dt1 = types.vector(64, 512, 1024, types.INT)
        dt2 = types.vector(128, 256, 512, types.INT)
        span = max(dt1.flatten(1).span, dt2.flatten(1).span) + 64

        def rank0(mpi):
            a = mpi.alloc(span)
            yield from mpi.send(a, dt1, 1, dest=1, tag=0)
            yield from mpi.send(a, dt2, 1, dest=1, tag=1)
            yield from mpi.send(a, dt1, 1, dest=1, tag=2)

        def rank1(mpi):
            b = mpi.alloc(span)
            yield from mpi.recv(b, dt1, 1, source=0, tag=0)
            yield from mpi.recv(b, dt2, 1, source=0, tag=1)
            yield from mpi.recv(b, dt1, 1, source=0, tag=2)

        cluster.run([rank0, rank1])
        sender = cluster.contexts[0]
        assert sender.dt_cache.misses == 2  # dt1 and dt2 layouts
        assert sender.dt_cache.hits == 1  # dt1 reused


class TestDatatypeCacheVersioning:
    def test_index_reuse_forces_full_resend_end_to_end(self):
        """Section 5.4.2's free/reuse case through the wire: with a
        1-entry receiver handle table, alternating datatypes reuse the
        index with a version bump, so every reply ships a full layout."""
        from repro.mpi.datatype_cache import ReceiverTypeRegistry

        dt1 = types.vector(64, 512, 1024, types.INT)
        dt2 = types.vector(128, 256, 512, types.INT)
        cluster = Cluster(2, scheme="multi-w")
        cluster.contexts[1].type_registry = ReceiverTypeRegistry(max_indices=1)
        span = max(dt1.flatten(1).span, dt2.flatten(1).span) + 64

        def rank0(mpi):
            a = mpi.alloc(span)
            yield from mpi.send(a, dt1, 1, dest=1, tag=0)
            yield from mpi.send(a, dt2, 1, dest=1, tag=1)
            yield from mpi.send(a, dt1, 1, dest=1, tag=2)

        def rank1(mpi):
            b = mpi.alloc(span)
            yield from mpi.recv(b, dt1, 1, source=0, tag=0)
            yield from mpi.recv(b, dt2, 1, source=0, tag=1)
            yield from mpi.recv(b, dt1, 1, source=0, tag=2)

        cluster.run([rank0, rank1])
        sender = cluster.contexts[0]
        # the single index is reused with version bumps: never a ref
        assert sender.dt_cache.misses == 3
        assert sender.dt_cache.hits == 0


class TestListDescriptorPost:
    pytestmark = pytest.mark.faultfree  # asserts timings

    def test_list_post_faster_at_small_blocks(self):
        """Figure 13: list post wins when per-descriptor CPU post cost
        rivals the per-descriptor wire time."""
        dt = types.vector(128, 32, 4096, types.INT)  # 128 B blocks
        _c, single = repeat_transfer(
            "multi-w", dt, 3, scheme_options={"list_post": False}
        )
        _c, listed = repeat_transfer(
            "multi-w", dt, 3, scheme_options={"list_post": True}
        )
        assert listed[-1] < single[-1]

    def test_list_post_negligible_at_large_blocks(self):
        dt = types.vector(32, 8192, 16384, types.INT)  # 32 KB blocks
        _c, single = repeat_transfer(
            "multi-w", dt, 3, scheme_options={"list_post": False}
        )
        _c, listed = repeat_transfer(
            "multi-w", dt, 3, scheme_options={"list_post": True}
        )
        # wire time dominates; a tiny inversion is possible because the
        # single post lets the HCA start on the first descriptor earlier
        assert abs(single[-1] - listed[-1]) / single[-1] < 0.03


class TestSegmentUnpack:
    def test_segment_unpack_faster(self):
        """Figure 12: unpacking per segment overlaps communication."""
        dt = types.vector(256, 1024, 2048, types.INT)  # 1 MB
        _c, seg = repeat_transfer(
            "rwg-up", dt, 3, scheme_options={"segment_unpack": True}
        )
        _c, whole = repeat_transfer(
            "rwg-up", dt, 3, scheme_options={"segment_unpack": False}
        )
        assert seg[-1] < whole[-1]

    def test_both_modes_correct(self):
        dt = types.vector(64, 256, 512, types.INT)
        for flag in (True, False):
            _c, _t = repeat_transfer(
                "rwg-up", dt, 2, scheme_options={"segment_unpack": flag}
            )


class TestAdaptiveSelection:
    pytestmark = pytest.mark.faultfree  # asserts timings
    def _choices(self, dt, **cluster_kwargs):
        cluster = Cluster(2, scheme="adaptive", **cluster_kwargs)
        span = dt.flatten(1).span + 64

        def rank0(mpi):
            a = mpi.alloc(span)
            yield from mpi.send(a, dt, 1, dest=1, tag=0)

        def rank1(mpi):
            b = mpi.alloc(span)
            yield from mpi.recv(b, dt, 1, source=0, tag=0)

        cluster.run([rank0, rank1])
        sel = cluster.contexts[0].get_scheme("adaptive")
        return list(sel.choices.values())

    def test_large_blocks_pick_multiw(self):
        dt = types.vector(64, 2048, 4096, types.INT)  # 8 KB blocks
        assert self._choices(dt) == ["multi-w"]

    def test_medium_blocks_pick_rwgup(self):
        dt = types.vector(128, 256, 4096, types.INT)  # 1 KB blocks
        assert self._choices(dt) == ["rwg-up"]

    def test_tiny_blocks_pick_bcspup(self):
        dt = types.vector(4096, 8, 64, types.INT)  # 32 B blocks
        assert self._choices(dt) == ["bc-spup"]

    def test_no_registration_cache_prefers_bcspup(self):
        """Section 6: when registration cannot be amortized, stay with
        the pack/unpack approach."""
        dt = types.vector(64, 2048, 4096, types.INT)
        assert self._choices(dt, reg_cache_bytes=0) == ["bc-spup"]

    def test_buffer_reuse_hint(self):
        dt = types.vector(64, 2048, 4096, types.INT)
        cluster = Cluster(
            2, scheme="adaptive", scheme_options={"buffer_reuse": False}
        )
        span = dt.flatten(1).span + 64

        def rank0(mpi):
            a = mpi.alloc(span)
            yield from mpi.send(a, dt, 1, dest=1, tag=0)

        def rank1(mpi):
            b = mpi.alloc(span)
            yield from mpi.recv(b, dt, 1, source=0, tag=0)

        cluster.run([rank0, rank1])
        sel = cluster.contexts[0].get_scheme("adaptive")
        assert list(sel.choices.values()) == ["bc-spup"]

    def test_adaptive_never_loses_badly(self):
        """The selector (a block-size heuristic, Section 6) should stay
        within 25% of the best fixed scheme in every block-size regime,
        and always beat Generic."""
        for dt in (
            types.vector(64, 2048, 4096, types.INT),
            types.vector(128, 256, 4096, types.INT),
            types.vector(2048, 8, 64, types.INT),
        ):
            times = {}
            for scheme in ("generic", "bc-spup", "rwg-up", "multi-w", "adaptive"):
                _c, t = repeat_transfer(scheme, dt, 3)
                times[scheme] = t[-1]
            best_fixed = min(v for k, v in times.items() if k != "adaptive")
            assert times["adaptive"] <= best_fixed * 1.25
            assert times["adaptive"] <= times["generic"]


class TestPRRS:
    pytestmark = pytest.mark.faultfree  # asserts timings
    def test_prrs_slower_than_rwgup(self):
        """Section 5.2's prediction: P-RRS trails RWG-UP (read latency +
        per-segment control messages)."""
        dt = types.vector(256, 1024, 2048, types.INT)
        _c, prrs = repeat_transfer("p-rrs", dt, 3)
        _c, rwg = repeat_transfer("rwg-up", dt, 3)
        assert prrs[-1] > rwg[-1]

    def test_prrs_useful_for_asymmetric(self):
        """P-RRS eliminates the receiver-side copy entirely when only the
        receiver is noncontiguous."""
        _c, t = repeat_transfer("p-rrs", types.vector(64, 64, 128, types.INT), 2)
        assert t[-1] > 0
