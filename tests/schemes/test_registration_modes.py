"""Tests for the three user-buffer registration strategies (Section 5.4.1)."""

import pytest

from repro import Cluster, types
from repro.ib import CostModel, Fabric
from repro.mpi.world import Cluster as _Cluster
from repro.schemes.base import RegisteredUserBuffer
from repro.simulator import Simulator
from tests.mpi.helpers import check_blocks, fill_blocks


def make_ctx(reg_cache_bytes=0):
    cluster = Cluster(2, reg_cache_bytes=reg_cache_bytes)
    return cluster, cluster.contexts[0]


def run_ctx(cluster, gen):
    p = cluster.sim.process(gen)
    cluster.sim.run()
    return p.value


# a vector with large gaps: 4 blocks of 1 page, 100 pages apart
GAPPY = types.hvector(4, 1024, 100 * 4096, types.INT)
# a vector with tiny gaps: mergeable by OGR
DENSE = types.vector(16, 512, 1024, types.INT)


class TestModes:
    def test_per_block_registers_each_block(self):
        cluster, ctx = make_ctx()
        base = ctx.alloc(GAPPY.flatten(1).span + 64)

        def prog():
            reg = yield from RegisteredUserBuffer.acquire(
                ctx, base, GAPPY.flatten(1), mode="per-block"
            )
            return reg

        reg = run_ctx(cluster, prog())
        assert len(reg.regions()) == 4

    def test_whole_registers_span(self):
        cluster, ctx = make_ctx()
        flat = GAPPY.flatten(1)
        base = ctx.alloc(flat.span + 64)

        def prog():
            reg = yield from RegisteredUserBuffer.acquire(
                ctx, base, flat, mode="whole"
            )
            return reg

        reg = run_ctx(cluster, prog())
        regions = reg.regions()
        assert len(regions) == 1
        assert regions[0][1] == flat.span

    def test_ogr_merges_dense_keeps_gappy_separate(self):
        cluster, ctx = make_ctx()

        def prog(dt):
            base = ctx.alloc(dt.flatten(1).span + 64)
            reg = yield from RegisteredUserBuffer.acquire(
                ctx, base, dt.flatten(1), mode="ogr"
            )
            return reg

        dense = run_ctx(cluster, prog(DENSE))
        assert len(dense.regions()) == 1
        gappy = run_ctx(cluster, prog(GAPPY))
        assert len(gappy.regions()) == 4

    def test_unknown_mode_rejected(self):
        cluster, ctx = make_ctx()
        base = ctx.alloc(DENSE.flatten(1).span + 64)

        def prog():
            yield from RegisteredUserBuffer.acquire(
                ctx, base, DENSE.flatten(1), mode="psychic"
            )

        with pytest.raises(ValueError):
            run_ctx(cluster, prog())

    def test_lkey_lookup_and_release(self):
        cluster, ctx = make_ctx()
        flat = DENSE.flatten(1)
        base = ctx.alloc(flat.span + 64)

        def prog():
            reg = yield from RegisteredUserBuffer.acquire(ctx, base, flat)
            first_off, first_len = next(flat.blocks())
            lkey = reg.lkey_for(base + first_off, first_len)
            yield from reg.release(ctx)
            return lkey

        lkey = run_ctx(cluster, prog())
        assert lkey > 0
        assert ctx.node.memory.registered_bytes == _infrastructure_bytes(ctx)

    def test_empty_flat_registers_nothing(self):
        cluster, ctx = make_ctx()
        from repro.datatypes.flatten import Flattened

        def prog():
            reg = yield from RegisteredUserBuffer.acquire(
                ctx, 0, Flattened.empty()
            )
            return reg

        reg = run_ctx(cluster, prog())
        assert reg.regions() == []


def _infrastructure_bytes(ctx):
    """Bytes registered by MPI_Init (slots), which never go away."""
    per_peer = 64 * ctx._slot_size
    send_slots = 128 * ctx._slot_size
    return per_peer * (ctx.nranks - 1) + send_slots


class TestEndToEnd:
    @pytest.mark.parametrize("mode", ["ogr", "per-block", "whole"])
    def test_rwgup_correct_under_all_modes(self, mode):
        dt = types.vector(64, 256, 1024, types.INT)
        cluster = Cluster(
            2, scheme="rwg-up", scheme_options={"registration_mode": mode}
        )
        span = dt.flatten(1).span + 64

        def rank0(mpi):
            buf = mpi.alloc(span)
            fill_blocks(mpi, buf, dt, 1)
            yield from mpi.send(buf, dt, 1, dest=1, tag=0)

        def rank1(mpi):
            buf = mpi.alloc(span)
            yield from mpi.recv(buf, dt, 1, source=0, tag=0)
            return check_blocks(mpi, buf, dt, 1)

        res = cluster.run([rank0, rank1])
        assert res.values[1] is True

    @pytest.mark.parametrize("mode", ["ogr", "per-block", "whole"])
    def test_multiw_correct_under_all_modes(self, mode):
        dt = types.vector(32, 1024, 4096, types.INT)
        cluster = Cluster(
            2, scheme="multi-w", scheme_options={"registration_mode": mode}
        )
        span = dt.flatten(1).span + 64

        def rank0(mpi):
            buf = mpi.alloc(span)
            fill_blocks(mpi, buf, dt, 1)
            yield from mpi.send(buf, dt, 1, dest=1, tag=0)

        def rank1(mpi):
            buf = mpi.alloc(span)
            yield from mpi.recv(buf, dt, 1, source=0, tag=0)
            return check_blocks(mpi, buf, dt, 1)

        res = cluster.run([rank0, rank1])
        assert res.values[1] is True
