"""Tests for the reusable application kernels."""

import numpy as np
import pytest

from repro import Cluster
from repro.apps import decompose_2d, halo_exchange, transpose


class TestDecompose:
    def test_square(self):
        assert decompose_2d(4) == (2, 2)
        assert decompose_2d(16) == (4, 4)

    def test_rectangular(self):
        assert decompose_2d(6) == (3, 2)
        assert decompose_2d(8) == (4, 2)

    def test_prime(self):
        assert decompose_2d(7) == (7, 1)


class TestHaloExchange:
    @pytest.mark.parametrize("nranks", [4, 6])
    def test_halos_carry_neighbour_ids(self, nranks):
        grid = decompose_2d(nranks)
        local = 64
        n = local + 2

        def program(mpi):
            tile = mpi.alloc_array((n, n), np.float64)
            tile.array[1:-1, 1:-1] = mpi.rank + 1
            yield from halo_exchange(mpi, tile.addr, n, 8, grid)
            py, px = grid
            row_i, col_i = divmod(mpi.rank, px)
            north = ((row_i - 1) % py) * px + col_i
            west = row_i * px + (col_i - 1) % px
            return (
                bool((tile.array[0, 1:-1] == north + 1).all()),
                bool((tile.array[1:-1, 0] == west + 1).all()),
            )

        res = Cluster(nranks).run(program)
        assert all(a and b for a, b in res.values)

    def test_bad_grid_rejected(self):
        def program(mpi):
            tile = mpi.alloc_array((10, 10), np.float64)
            yield from halo_exchange(mpi, tile.addr, 10, 8, (3, 3))

        with pytest.raises(ValueError, match="grid"):
            Cluster(4).run(program)

    def test_int_tiles(self):
        def program(mpi):
            n = 18
            tile = mpi.alloc_array((n, n), np.int32)
            tile.array[1:-1, 1:-1] = mpi.rank + 1
            yield from halo_exchange(mpi, tile.addr, n, 4, (2, 2))
            return int(tile.array[0, 1])

        res = Cluster(4).run(program)
        assert res.values[0] == 3  # north of rank 0 is rank 2 (periodic)


class TestTranspose:
    @pytest.mark.parametrize("p,n", [(2, 64), (4, 128)])
    def test_transpose_correct(self, p, n):
        rows = n // p

        def program(mpi):
            panel = mpi.alloc_array((rows, n), np.float64)
            first = mpi.rank * rows
            panel.array[:] = (
                np.arange(first, first + rows)[:, None] * n + np.arange(n)
            )
            out = mpi.alloc_array((rows, n), np.float64)
            yield from transpose(mpi, panel.addr, out.addr, n, 8)
            # out must hold rows [rank*rows, ...) of the transpose:
            # T[r, c] = c * n + r
            first_t = mpi.rank * rows
            expect = (
                np.arange(n)[None, :] * n
                + np.arange(first_t, first_t + rows)[:, None]
            ).astype(np.float64)
            return bool(np.array_equal(out.array, expect))

        res = Cluster(p).run(program)
        assert all(res.values)

    def test_indivisible_rejected(self):
        def program(mpi):
            panel = mpi.alloc_array((10, 30), np.float64)
            out = mpi.alloc_array((10, 30), np.float64)
            yield from transpose(mpi, panel.addr, out.addr, 30, 8)

        with pytest.raises(ValueError, match="divisible"):
            Cluster(4).run(program)

    def test_double_transpose_is_identity(self):
        p, n = 4, 64
        rows = n // p

        def program(mpi):
            rng = np.random.default_rng(mpi.rank)
            panel = mpi.alloc_array((rows, n), np.float64)
            panel.array[:] = rng.random((rows, n))
            original = panel.array.copy()
            tmp = mpi.alloc_array((rows, n), np.float64)
            yield from transpose(mpi, panel.addr, tmp.addr, n, 8)
            back = mpi.alloc_array((rows, n), np.float64)
            yield from transpose(mpi, tmp.addr, back.addr, n, 8)
            return bool(np.allclose(back.array, original))

        res = Cluster(p).run(program)
        assert all(res.values)

    def test_on_subcommunicator(self):
        """The kernels accept a communicator: transpose within a row of a
        2x2 grid."""
        n = 32

        def program(mpi):
            row = yield from mpi.comm_split(color=mpi.rank // 2, key=mpi.rank)
            rows = n // row.nranks
            panel = mpi.alloc_array((rows, n), np.float64)
            first = row.rank * rows
            panel.array[:] = (
                np.arange(first, first + rows)[:, None] * n + np.arange(n)
            )
            out = mpi.alloc_array((rows, n), np.float64)
            yield from transpose(mpi, panel.addr, out.addr, n, 8, comm=row)
            first_t = row.rank * rows
            expect = (
                np.arange(n)[None, :] * n
                + np.arange(first_t, first_t + rows)[:, None]
            ).astype(np.float64)
            return bool(np.array_equal(out.array, expect))

        res = Cluster(4).run(program)
        assert all(res.values)
