"""Tests for the pin-down registration cache."""

import pytest

from repro.ib import CostModel, Fabric
from repro.registration import RegistrationCache
from repro.simulator import Simulator


def make_node():
    sim = Simulator()
    fabric = Fabric(sim, CostModel.mellanox_2003())
    return sim, fabric.add_node(1 << 24)


def run(sim, gen):
    p = sim.process(gen)
    sim.run()
    return p.value


class TestHitsAndMisses:
    def test_first_acquire_is_miss(self):
        sim, node = make_node()
        cache = RegistrationCache(node, capacity_bytes=1 << 20)

        def prog():
            mr = yield from cache.acquire(0, 4096)
            return mr

        mr = run(sim, prog())
        assert cache.misses == 1 and cache.hits == 0
        assert mr.covers(0, 4096)

    def test_reacquire_is_free_hit(self):
        sim, node = make_node()
        cache = RegistrationCache(node, capacity_bytes=1 << 20)

        def prog():
            mr1 = yield from cache.acquire(0, 4096)
            yield from cache.release(mr1)
            t0 = sim.now
            mr2 = yield from cache.acquire(0, 4096)
            return mr1, mr2, sim.now - t0

        mr1, mr2, dt = run(sim, prog())
        assert mr1 is mr2
        assert dt == 0.0
        assert cache.hits == 1

    def test_containment_hit(self):
        sim, node = make_node()
        cache = RegistrationCache(node, capacity_bytes=1 << 20)

        def prog():
            big = yield from cache.acquire(0, 8192)
            sub = yield from cache.acquire(100, 200)
            return big, sub

        big, sub = run(sim, prog())
        assert sub is big
        assert cache.hits == 1

    def test_non_covering_is_miss(self):
        sim, node = make_node()
        cache = RegistrationCache(node, capacity_bytes=1 << 20)

        def prog():
            yield from cache.acquire(0, 4096)
            yield from cache.acquire(4096, 4096)

        run(sim, prog())
        assert cache.misses == 2

    def test_hit_rate(self):
        sim, node = make_node()
        cache = RegistrationCache(node, capacity_bytes=1 << 20)
        assert cache.hit_rate == 0.0

        def prog():
            mr = yield from cache.acquire(0, 4096)
            yield from cache.release(mr)
            mr = yield from cache.acquire(0, 4096)
            yield from cache.release(mr)

        run(sim, prog())
        assert cache.hit_rate == 0.5


class TestEviction:
    def test_lru_eviction_over_budget(self):
        sim, node = make_node()
        cache = RegistrationCache(node, capacity_bytes=8192)

        def prog():
            a = yield from cache.acquire(0, 4096)
            yield from cache.release(a)
            b = yield from cache.acquire(4096, 4096)
            yield from cache.release(b)
            c = yield from cache.acquire(8192, 4096)  # evicts a (LRU)
            yield from cache.release(c)
            # 'a' must now be a miss again; 'b' still cached
            yield from cache.acquire(4096, 4096)
            hits_after_b = cache.hits
            yield from cache.acquire(0, 4096)
            return hits_after_b

        hits_after_b = run(sim, prog())
        assert hits_after_b == 1
        assert cache.misses == 4  # a, b, c, a-again
        assert cache.evictions == 2  # a evicted by c, then c by a-again

    def test_in_use_entries_not_evicted(self):
        sim, node = make_node()
        cache = RegistrationCache(node, capacity_bytes=4096)

        def prog():
            a = yield from cache.acquire(0, 4096)  # held, never released
            yield from cache.acquire(4096, 4096)
            return a

        a = run(sim, prog())
        # 'a' is still registered despite budget pressure
        assert any(mr is a for mr in node.memory.registered_regions)

    def test_capacity_zero_disables_cache(self):
        sim, node = make_node()
        cache = RegistrationCache(node, capacity_bytes=0)

        def prog():
            mr = yield from cache.acquire(0, 4096)
            yield from cache.release(mr)
            t0 = sim.now
            mr2 = yield from cache.acquire(0, 4096)
            yield from cache.release(mr2)
            return sim.now - t0

        dt = run(sim, prog())
        assert cache.hits == 0
        assert cache.misses == 2
        # second acquire paid full registration again
        assert dt >= node.cm.reg_time(4096)
        # nothing left pinned
        assert node.memory.registered_bytes == 0

    def test_eviction_counter_exported_to_metrics(self):
        sim, node = make_node()
        cache = RegistrationCache(node, capacity_bytes=4096)

        def prog():
            a = yield from cache.acquire(0, 4096)
            yield from cache.release(a)
            b = yield from cache.acquire(4096, 4096)  # evicts a
            yield from cache.release(b)

        run(sim, prog())
        assert cache.evictions == 1
        m = node.metrics
        assert m.counter("reg.cache.evictions", node.node_id).value == 1
        assert m.counter("reg.cache.hits", node.node_id).value == cache.hits
        assert m.counter("reg.cache.misses", node.node_id).value == cache.misses
        # the pinned-bytes gauge saw the over-budget moment
        assert m.gauge("reg.cache.pinned_bytes", node.node_id).max_value == 8192

    def test_no_evictions_within_budget(self):
        sim, node = make_node()
        cache = RegistrationCache(node, capacity_bytes=1 << 20)

        def prog():
            mr = yield from cache.acquire(0, 4096)
            yield from cache.release(mr)
            mr = yield from cache.acquire(0, 4096)
            yield from cache.release(mr)

        run(sim, prog())
        assert cache.evictions == 0
        assert node.metrics.counter("reg.cache.evictions", node.node_id).value == 0

    def test_flush(self):
        sim, node = make_node()
        cache = RegistrationCache(node, capacity_bytes=1 << 20)

        def prog():
            mr = yield from cache.acquire(0, 4096)
            yield from cache.release(mr)
            held = yield from cache.acquire(8192, 4096)
            yield from cache.flush()
            return held

        held = run(sim, prog())
        regions = node.memory.registered_regions
        assert len(regions) == 1 and regions[0] is held
