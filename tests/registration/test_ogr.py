"""Tests for Optimistic Group Registration."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ib import CostModel, Fabric
from repro.registration.ogr import GroupRegistration, plan_cost, plan_regions
from repro.simulator import Simulator


@pytest.fixture
def cm():
    return CostModel.mellanox_2003()


def covers(regions, blocks):
    return all(
        any(ra <= a and a + l <= ra + rl for ra, rl in regions) for a, l in blocks
    )


class TestPlanRegions:
    def test_empty(self, cm):
        assert plan_regions([], cm) == []

    def test_single_block(self, cm):
        assert plan_regions([(100, 50)], cm) == [(100, 50)]

    def test_small_gap_merged(self, cm):
        # 1-page gap costs reg_per_page << reg_base: merge
        blocks = [(0, 4096), (8192, 4096)]
        plan = plan_regions(blocks, cm)
        assert len(plan) == 1
        assert covers(plan, blocks)

    def test_huge_gap_kept_separate(self, cm):
        # gap of 1000 pages costs 1000*reg_per_page >> reg_base: split
        blocks = [(0, 4096), (4096 * 1001, 4096)]
        plan = plan_regions(blocks, cm)
        assert len(plan) == 2
        assert covers(plan, blocks)

    def test_threshold_gap(self, cm):
        # merge exactly when pages(gap)*per_page < base
        threshold_pages = int(cm.reg_base / cm.reg_per_page)
        gap_small = (threshold_pages - 2) * cm.page_size
        gap_big = (threshold_pages + 2) * cm.page_size
        small = plan_regions([(0, 4096), (4096 + gap_small, 4096)], cm)
        big = plan_regions([(0, 4096), (4096 + gap_big, 4096)], cm)
        assert len(small) == 1
        assert len(big) == 2

    def test_adjacent_blocks_merge(self, cm):
        plan = plan_regions([(0, 100), (100, 100)], cm)
        assert plan == [(0, 200)]

    def test_unsorted_input(self, cm):
        plan = plan_regions([(8192, 100), (0, 100)], cm)
        assert covers(plan, [(0, 100), (8192, 100)])
        assert plan == sorted(plan)

    def test_overlap_rejected(self, cm):
        with pytest.raises(ValueError):
            plan_regions([(0, 100), (50, 100)], cm)

    def test_zero_length_blocks_dropped(self, cm):
        assert plan_regions([(0, 0), (10, 5)], cm) == [(10, 5)]

    def test_plan_beats_extremes(self, cm):
        """OGR cost <= both naive strategies (Section 5.4.1)."""
        blocks = [(i * 3 * 4096, 4096) for i in range(10)] + [
            (4096 * 2000 + i * 4096 * 300, 2048) for i in range(5)
        ]
        plan = plan_regions(blocks, cm)
        per_block = plan_cost(cm, blocks)
        lo = min(a for a, _ in blocks)
        hi = max(a + l for a, l in blocks)
        whole = plan_cost(cm, [(lo, hi - lo)])
        ours = plan_cost(cm, plan)
        assert ours <= per_block
        assert ours <= whole

    @given(
        st.lists(
            st.tuples(st.integers(0, 200), st.integers(1, 16)), min_size=1, max_size=8
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_greedy_optimal_for_small_inputs(self, raw):
        """For <= 8 blocks, greedy matches brute-force over all gap
        merge/split decisions."""
        cm = CostModel.mellanox_2003()
        # build disjoint blocks in page units
        blocks, pos = [], 0
        for gap, length in raw:
            pos += gap * cm.page_size
            blocks.append((pos, length * cm.page_size))
            pos += length * cm.page_size
        plan = plan_regions(blocks, cm)
        best = float("inf")
        n = len(blocks)
        for mask in itertools.product([0, 1], repeat=n - 1):
            regions = [list(blocks[0])]
            ok = True
            for bit, (addr, length) in zip(mask, blocks[1:]):
                if bit:
                    regions[-1][1] = addr + length - regions[-1][0]
                else:
                    regions.append([addr, length])
            best = min(best, plan_cost(cm, [(a, l) for a, l in regions]))
        assert plan_cost(cm, plan) == pytest.approx(best)


class TestGroupRegistration:
    def _node(self):
        sim = Simulator()
        fabric = Fabric(sim, CostModel.mellanox_2003())
        return sim, fabric.add_node(1 << 24)

    def test_register_and_lookup(self):
        sim, node = self._node()
        blocks = [(0, 4096), (8192, 4096)]

        def prog():
            group = yield from GroupRegistration.register(node, blocks)
            return group

        p = sim.process(prog())
        sim.run()
        group = p.value
        assert covers([(mr.addr, mr.length) for mr in group.regions], blocks)
        mr = group.mr_for(8192, 100)
        assert mr.covers(8192, 100)
        assert group.lkey_for(0, 4096) == group.mr_for(0, 10).lkey

    def test_lookup_miss_raises(self):
        sim, node = self._node()

        def prog():
            group = yield from GroupRegistration.register(node, [(0, 4096)])
            return group

        p = sim.process(prog())
        sim.run()
        with pytest.raises(KeyError):
            p.value.mr_for(1 << 20, 10)

    def test_registration_charges_time(self):
        sim, node = self._node()

        def prog():
            t0 = sim.now
            yield from GroupRegistration.register(node, [(0, 1 << 20)])
            return sim.now - t0

        p = sim.process(prog())
        sim.run()
        assert p.value == pytest.approx(node.cm.reg_time(1 << 20))

    def test_deregister_clears(self):
        sim, node = self._node()

        def prog():
            group = yield from GroupRegistration.register(node, [(0, 4096)])
            assert node.memory.registered_bytes == 4096
            yield from group.deregister(node)
            return group

        p = sim.process(prog())
        sim.run()
        assert p.value.nregions == 0
        assert node.memory.registered_bytes == 0

    def test_registered_bytes_accounts_gaps(self):
        sim, node = self._node()
        blocks = [(0, 4096), (8192, 4096)]  # small gap -> merged

        def prog():
            return (yield from GroupRegistration.register(node, blocks))

        p = sim.process(prog())
        sim.run()
        assert p.value.registered_bytes == 12288  # includes the gap page
