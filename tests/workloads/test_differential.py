"""Differential equivalence: recorded traces vs direct-API runs.

A checked-in library trace replayed under scheme S must be *exactly*
equal to a fresh live recording of the same pattern under S: identical
simulated time, identical buffer-digest timelines at every observation
point, identical delivered payloads.  This holds serially, on a process
pool, and with a fault profile injected — recorded ``data`` ops carry
only application writes (never network-delivered bytes), so a trace
recorded under one scheme/timing is valid under every other.
"""

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.schemes import SCHEME_NAMES
from repro.workloads.library import library_names, load_workload
from repro.workloads.patterns import pattern_names, record_pattern
from repro.workloads.replay import replay

pytestmark = pytest.mark.faultfree


def test_library_covers_every_pattern():
    assert library_names() == pattern_names()


@pytest.mark.parametrize("name", pattern_names())
def test_replay_equals_live_run_default_scheme(name):
    live = record_pattern(name)
    rep = replay(load_workload(name), collect_payloads=True)
    assert rep.time_us == live.time_us
    assert rep.digests == live.digests
    assert rep.payloads == live.payloads


@pytest.mark.slow
@pytest.mark.parametrize("name", pattern_names())
@pytest.mark.parametrize("scheme", SCHEME_NAMES)
def test_replay_equals_live_run_cross_scheme(name, scheme):
    """The acceptance grid: every pattern, every scheme, exact equality."""
    live = record_pattern(name, scheme=scheme)
    rep = replay(
        load_workload(name), scheme=scheme, collect_payloads=True
    )
    assert rep.time_us == live.time_us, (name, scheme)
    assert rep.digests == live.digests, (name, scheme)
    assert rep.payloads == live.payloads, (name, scheme)


def _replay_worker(name):
    res = replay(load_workload(name), collect_payloads=True)
    return name, res.time_us, res.digests, res.payloads


@pytest.mark.slow
def test_parallel_replay_matches_serial():
    serial = {name: _replay_worker(name) for name in library_names()}
    with ProcessPoolExecutor(max_workers=4) as pool:
        parallel = {
            out[0]: out
            for out in pool.map(_replay_worker, library_names())
        }
    assert parallel == serial


@pytest.mark.parametrize("profile", ["lossy"])
def test_replay_equals_live_run_under_faults(monkeypatch, profile):
    """Fault injection perturbs timing identically for trace and live
    run — the op streams are identical, so the fault schedule is too."""
    monkeypatch.setenv("REPRO_FAULT_PROFILE", profile)
    monkeypatch.setenv("REPRO_FAULT_SEED", "7")
    name = "halo_exchange_2d"
    live = record_pattern(name)
    rep = replay(load_workload(name), collect_payloads=True)
    assert rep.time_us == live.time_us
    assert rep.digests == live.digests
    assert rep.payloads == live.payloads
