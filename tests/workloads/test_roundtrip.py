"""Serialization: byte-stable round-trips and actionable parse errors."""

import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings

from repro.workloads import WorkloadError, parse, to_json, validate
from repro.workloads.fuzz import workloads
from repro.workloads.library import library_dir
from repro.workloads.validate import is_valid

CORPUS_DIR = Path(__file__).resolve().parent / "corpus"

CHECKED_IN = sorted(CORPUS_DIR.glob("*.json")) + sorted(
    library_dir().glob("*.json")
)


@pytest.mark.parametrize("path", CHECKED_IN, ids=lambda p: p.stem)
def test_checked_in_files_are_byte_stable(path):
    text = path.read_text()
    workload = parse(text)
    assert to_json(workload) == text
    assert parse(to_json(workload)) == workload
    validate(workload)


@given(workloads())
@settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_generated_workloads_round_trip_byte_stable(workload):
    text = to_json(workload)
    assert parse(text) == workload
    assert to_json(parse(text)) == text


@given(workloads())
@settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_grammar_never_emits_invalid_programs(workload):
    assert is_valid(workload) is None


def _doc():
    return json.loads(
        (CORPUS_DIR / "eager_rndv_overtake.json").read_text()
    )


def _parse_doc(doc):
    return parse(json.dumps(doc))


def test_unknown_op_names_rank_index_and_known_ops():
    doc = _doc()
    doc["ranks"][1][2]["op"] = "telepathy"
    with pytest.raises(WorkloadError) as err:
        _parse_doc(doc)
    msg = str(err.value)
    assert "rank 1 op 2" in msg
    assert "telepathy" in msg
    assert "known ops" in msg


def test_unknown_field_is_rejected_with_location():
    doc = _doc()
    doc["ranks"][0][0]["volume"] = 11
    with pytest.raises(WorkloadError) as err:
        _parse_doc(doc)
    msg = str(err.value)
    assert "rank 0 op 0" in msg
    assert "volume" in msg


def test_missing_required_field_is_rejected_with_location():
    doc = _doc()
    del doc["ranks"][0][4]["dest"]
    with pytest.raises(WorkloadError) as err:
        _parse_doc(doc)
    msg = str(err.value)
    assert "rank 0 op 4" in msg
    assert "dest" in msg


def test_unknown_type_reference_is_rejected():
    doc = _doc()
    doc["ranks"][0][4]["type"] = "ghost"
    workload = _parse_doc(doc)
    with pytest.raises(WorkloadError, match="ghost"):
        validate(workload)


def test_unknown_scheme_is_rejected():
    doc = _doc()
    doc["cluster"]["scheme"] = "warp-drive"
    with pytest.raises(WorkloadError, match="warp-drive"):
        validate(_parse_doc(doc))


def test_bad_format_marker_is_rejected():
    doc = _doc()
    doc["format"] = "not-a-workload"
    with pytest.raises(WorkloadError, match="format"):
        _parse_doc(doc)
