"""The fuzz grammar and its static oracle."""

from hypothesis import HealthCheck, given, settings

from repro.schemes import SCHEME_NAMES
from repro.workloads import ir
from repro.workloads.fuzz import (
    MESSAGE_SIZES,
    check_workload,
    expected_payloads,
    fuzz_time_boxed,
    workloads,
)
from repro.workloads.replay import fill_pattern

_SETTINGS = dict(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def test_message_sizes_straddle_eager_threshold():
    assert any(s <= 8192 for s in MESSAGE_SIZES)
    assert any(s > 8192 for s in MESSAGE_SIZES)


@given(workloads())
@settings(**_SETTINGS)
def test_oracle_holds_on_generated_programs(workload):
    assert workload.scheme in SCHEME_NAMES
    check_workload(workload)


@given(workloads())
@settings(**_SETTINGS)
def test_oracle_pairs_every_receive(workload):
    expected = expected_payloads(workload)
    nrecvs = sum(
        isinstance(op, (ir.Irecv, ir.Recv))
        for rank_ops in workload.ranks
        for op in rank_ops
    )
    # the grammar generates both endpoints for every message, so every
    # receive has a statically matched send
    assert len(expected) == nrecvs
    assert all(payload is not None for payload in expected.values())


def _simple(types, rank0, rank1, name="t"):
    return ir.Workload(
        name=name, nranks=2, ranks=(tuple(rank0), tuple(rank1)),
        types=types,
    )


_BYTE = {"type": "primitive", "name": "byte"}


def test_oracle_computes_fill_bytes():
    types = {"c": {"type": "contiguous", "count": 64, "base": _BYTE}}
    rank0 = [
        ir.Alloc(buf="a", nbytes=64),
        ir.Fill(buf="a", offset=0, nbytes=64, a=5, b=2, mod=97),
        ir.Isend(req="s", buf="a", offset=0, type="c", count=1,
                 dest=1, tag=0),
        ir.Wait(req="s"),
    ]
    rank1 = [
        ir.Alloc(buf="x", nbytes=64),
        ir.Irecv(req="r", buf="x", offset=0, type="c", count=1,
                 source=0, tag=0),
        ir.Wait(req="r"),
    ]
    expected = expected_payloads(_simple(types, rank0, rank1))
    assert expected == {(1, "r"): fill_pattern(64, 5, 2, 97).tobytes()}


def test_oracle_marks_forwarded_bytes_unknowable():
    """A send reading a buffer that a receive targeted is tainted: its
    bytes depend on delivery, so the static oracle must return None."""
    types = {"c": {"type": "contiguous", "count": 8, "base": _BYTE}}
    rank0 = [
        ir.Alloc(buf="a", nbytes=8),
        ir.Fill(buf="a", offset=0, nbytes=8, a=1, b=1, mod=251),
        ir.Isend(req="s", buf="a", offset=0, type="c", count=1,
                 dest=1, tag=0),
        ir.Wait(req="s"),
    ]
    rank1 = [
        ir.Alloc(buf="x", nbytes=8),
        ir.Irecv(req="r", buf="x", offset=0, type="c", count=1,
                 source=0, tag=0),
        ir.Wait(req="r"),
        # forward the received buffer back
        ir.Isend(req="s2", buf="x", offset=0, type="c", count=1,
                 dest=0, tag=1),
        ir.Wait(req="s2"),
    ]
    rank0 += [
        ir.Alloc(buf="y", nbytes=8),
        ir.Irecv(req="r2", buf="y", offset=0, type="c", count=1,
                 source=1, tag=1),
        ir.Wait(req="r2"),
    ]
    expected = expected_payloads(_simple(types, rank0, rank1))
    assert expected[(1, "r")] is not None
    assert expected[(0, "r2")] is None  # forwarded — not knowable


def test_fuzz_time_boxed_clean_run_reports_ok():
    report = fuzz_time_boxed(3, seed=1)
    assert report.ok
    assert report.examples > 0
    assert report.chunks >= 1


def test_fuzz_time_boxed_is_deterministic_per_seed():
    a = fuzz_time_boxed(2, seed=9)
    b = fuzz_time_boxed(2, seed=9)
    assert a.ok and b.ok
    # same seed explores the same chunks; only the count of chunks that
    # fit the box may differ
    assert a.failure == b.failure
