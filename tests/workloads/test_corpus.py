"""Corpus replay: every checked-in regression program, every scheme.

The corpus holds minimal IR programs distilled from found protocol
bugs — the PR 2 eager/rendezvous overtake seed plus any shrunk fuzzer
counterexamples.  Each must replay with oracle-exact payloads under all
seven datatype schemes, with and without eager RDMA.
"""

from pathlib import Path

import pytest

from repro.schemes import SCHEME_NAMES
from repro.workloads import parse, validate
from repro.workloads.fuzz import check_workload, expected_payloads

CORPUS_DIR = Path(__file__).resolve().parent / "corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_not_empty():
    assert CORPUS, f"no corpus programs in {CORPUS_DIR}"


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
@pytest.mark.parametrize("scheme", SCHEME_NAMES)
def test_corpus_program_delivers_exact_payloads(path, scheme):
    workload = parse(path.read_text())
    validate(workload)
    check_workload(workload, scheme=scheme)


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_program_delivers_with_eager_rdma(path):
    workload = parse(path.read_text())
    check_workload(workload, eager_rdma=True)


def test_overtake_seed_straddles_the_eager_threshold():
    """The seed must keep one eager and one rendezvous send in the same
    (src, dst, tag) stream — that straddle *is* the PR 2 bug shape."""
    workload = parse(
        (CORPUS_DIR / "eager_rndv_overtake.json").read_text()
    )
    expected = expected_payloads(workload)
    sizes = sorted(len(p) for p in expected.values())
    assert sizes == [4096, 12000]
    assert sizes[0] < 8192 < sizes[1]
