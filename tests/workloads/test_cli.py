"""``python -m repro.workloads`` surface."""

from pathlib import Path

import pytest

from repro.workloads.__main__ import main

CORPUS = (
    Path(__file__).resolve().parent / "corpus" / "eager_rndv_overtake.json"
)


@pytest.fixture(autouse=True)
def sandbox(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


def test_list_prints_library(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "halo_exchange_2d" in out
    assert "weight=0.40" in out


def test_validate_ok_and_failure(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    assert main(["validate", str(CORPUS)]) == 0
    assert main(["validate", str(CORPUS), str(bad)]) == 1
    out = capsys.readouterr().out
    assert "ok" in out and "FAIL" in out


def test_replay_reports_simulated_time(capsys):
    assert main(["replay", str(CORPUS), "--scheme", "generic"]) == 0
    out = capsys.readouterr().out
    assert "eager_rndv_overtake" in out
    assert "scheme=generic" in out
    assert "us" in out


def test_record_writes_trace(tmp_path, capsys):
    out_path = tmp_path / "t.json"
    code = main([
        "record", "matrix_transpose_alltoall", "-o", str(out_path)
    ])
    assert code == 0
    from repro.workloads import parse
    from repro.workloads.library import load_workload

    assert parse(out_path.read_text()) == load_workload(
        "matrix_transpose_alltoall"
    )


def test_record_rejects_unknown_pattern(capsys):
    assert main(["record", "nonesuch"]) == 2
    assert "unknown pattern" in capsys.readouterr().out


def test_run_subset_prints_metrics(capsys):
    code = main([
        "run", "--workloads", "particle_exchange",
        "--schemes", "bc-spup", "--presets", "mellanox_2003",
        "-j", "1", "--no-ledger",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "scenario/particle_exchange/bc-spup/mellanox_2003" in out
    assert "scenario/weighted/bc-spup/mellanox_2003" in out


def test_fuzz_clean_box_exits_zero(capsys):
    assert main(["fuzz", "--seconds", "2", "--seed", "3"]) == 0
    assert "no counterexample" in capsys.readouterr().out
