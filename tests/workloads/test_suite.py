"""Scenario suite: pool-runner dispatch, ledger records, trends."""

import json

import pytest

from repro.bench.parallel import Cell, cell_key, evaluate_cell, run_cells
from repro.workloads.library import (
    library_names,
    load_workload,
    workload_spec,
)
from repro.workloads.replay import replay
from repro.workloads.suite import (
    SUITE_WEIGHTS,
    run_suite,
    suite_cells,
)

pytestmark = pytest.mark.faultfree


@pytest.fixture
def sandbox(monkeypatch, tmp_path):
    """Redirect ledger/results/cache so suite runs never dirty the tree."""
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path


def test_weights_cover_the_library_and_sum_to_one():
    assert set(SUITE_WEIGHTS) == set(library_names())
    assert abs(sum(SUITE_WEIGHTS.values()) - 1.0) < 1e-9


def test_workload_cell_dispatch_matches_direct_replay(sandbox):
    cell = Cell("workload:halo_exchange_2d", "bc-spup", 0,
                (("preset", "mellanox_2003"),))
    direct = replay(load_workload("halo_exchange_2d"), scheme="bc-spup")
    assert evaluate_cell(cell) == direct.time_us


def test_workload_cells_key_on_trace_content(sandbox):
    spec = workload_spec("halo_exchange_2d")
    assert spec.startswith("halo_exchange_2d@")
    a = cell_key(Cell("workload:halo_exchange_2d", "bc-spup", 0))
    b = cell_key(Cell("workload:halo_exchange_2d", "generic", 0))
    assert a != b


def test_suite_cells_cover_full_grid():
    cells = suite_cells(
        workloads=["halo_exchange_2d"], schemes=["bc-spup", "generic"],
        presets=["mellanox_2003"],
    )
    assert len(cells) == 2
    assert {c.series for c in cells} == {"bc-spup", "generic"}
    assert all(c.figure == "workload:halo_exchange_2d" for c in cells)


def test_run_suite_appends_scenario_ledger_record(sandbox):
    metrics = run_suite(
        workloads=["particle_exchange"],
        schemes=["bc-spup", "generic"],
        presets=["mellanox_2003"],
        jobs=1,
    )
    assert (
        "scenario/particle_exchange/bc-spup/mellanox_2003" in metrics
    )
    weighted = metrics["scenario/weighted/bc-spup/mellanox_2003"]
    per_cell = metrics["scenario/particle_exchange/bc-spup/mellanox_2003"]
    assert weighted == round(
        SUITE_WEIGHTS["particle_exchange"] * per_cell, 3
    )

    ledger_file = sandbox / "ledger" / "ledger.jsonl"
    lines = ledger_file.read_text().splitlines()
    assert len(lines) == 1
    record = json.loads(lines[0])
    assert record["kind"] == "scenario"
    assert record["status"] == "pass"
    entry = record["metrics"][
        "scenario/particle_exchange/generic/mellanox_2003"
    ]
    assert entry["unit"] == "us" and entry["better"] == "lower"


def test_suite_results_are_cached_across_runs(sandbox):
    kwargs = dict(
        workloads=["matrix_transpose_alltoall"],
        schemes=["bc-spup"], presets=["mellanox_2003"],
        jobs=1, ledger=False,
    )
    first = run_suite(**kwargs)
    second = run_suite(**kwargs)
    assert first == second
    cached = list((sandbox / "cache").rglob("*.json"))
    assert cached, "suite cells should land in the sweep cache"


def test_trends_charts_scenario_metrics(sandbox, capsys):
    run_suite(
        workloads=["particle_exchange"], schemes=["bc-spup"],
        presets=["mellanox_2003"], jobs=1,
    )
    from repro.obs.trends import run_trends

    run_trends(patterns=["scenario/*"])
    out = capsys.readouterr().out
    assert "scenario/particle_exchange/bc-spup/mellanox_2003" in out
    assert "scenario/weighted/bc-spup/mellanox_2003" in out
