"""Mutation test: the fuzzer must re-find the PR 2 matching-order bug.

``repro.mpi.context.BREAK_MATCHING_ORDER`` reverts the per-source
sequence-order admission fix (envelopes deliver on arrival, so a fast
rendezvous start can overtake an earlier eager payload in the same
stream).  With the guard flipped, (a) the corpus seed program must fail
its oracle on every scheme, and (b) the grammar fuzzer must find a
counterexample within a slice of the CI time box — proof that the fuzz
effort actually covers the protocol corner the bug lives in.
"""

from pathlib import Path

import pytest

import repro.mpi.context as mpi_context
from repro.schemes import SCHEME_NAMES
from repro.workloads import parse
from repro.workloads.fuzz import check_workload, fuzz_time_boxed

CORPUS_DIR = Path(__file__).resolve().parent / "corpus"


@pytest.fixture
def broken_matching_order(monkeypatch):
    monkeypatch.setattr(mpi_context, "BREAK_MATCHING_ORDER", True)


def _overtake():
    return parse((CORPUS_DIR / "eager_rndv_overtake.json").read_text())


def test_guard_defaults_off():
    assert mpi_context.BREAK_MATCHING_ORDER is False


@pytest.mark.parametrize("scheme", SCHEME_NAMES)
def test_corpus_seed_detects_reverted_fix(broken_matching_order, scheme):
    with pytest.raises((AssertionError, ValueError)):
        check_workload(_overtake(), scheme=scheme)


@pytest.mark.slow
@pytest.mark.faultfree
def test_fuzzer_refinds_matching_order_bug(monkeypatch, tmp_path):
    monkeypatch.setattr(mpi_context, "BREAK_MATCHING_ORDER", True)
    report = fuzz_time_boxed(
        90, seed=42, artifact_dir=str(tmp_path)
    )
    assert not report.ok, (
        f"fuzzer missed the reverted ordering fix after "
        f"{report.examples} examples / {report.elapsed:.0f}s"
    )
    # the shrunk counterexample is a valid corpus candidate: it fails
    # only while the fix is reverted
    path = report.failure["path"]
    assert path is not None and Path(path).is_file()
    counterexample = parse(Path(path).read_text())
    monkeypatch.setattr(mpi_context, "BREAK_MATCHING_ORDER", False)
    check_workload(counterexample)
