"""Suite-wide fixtures: fault-profile fencing for timing assertions.

The CI fault matrix runs this whole suite under ``REPRO_FAULT_PROFILE``
(none / lossy / flaky-hca) to prove that every data-movement path still
delivers correct bytes with faults injected.  Tests that assert
*simulated timings* — calibration anchors, scheme performance orderings,
benchmark statistics — are meaningless with injected faults perturbing
the clock; they carry the ``faultfree`` marker and run with the profile
pinned back to inert regardless of the environment.

Hypothesis profiles: CI selects ``HYPOTHESIS_PROFILE=ci`` so the fuzz
tests are derandomized (seeded from each test's source) and fully
reproducible across reruns; local runs keep the default randomized
exploration.
"""

import os

import pytest
from hypothesis import settings as hypothesis_settings

hypothesis_settings.register_profile(
    "ci", derandomize=True, deadline=None, print_blob=True
)
hypothesis_settings.load_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "default")
)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "faultfree: pin REPRO_FAULT_PROFILE=none — the test asserts "
        "simulated timings, which fault injection perturbs",
    )
    config.addinivalue_line(
        "markers",
        "slow: multi-second test (process-pool sweeps, full-grid "
        "equivalence); deselect with `-m 'not slow'`",
    )


@pytest.fixture(autouse=True)
def _pin_fault_profile(request, monkeypatch):
    """Strip the fault-profile environment for ``faultfree`` tests."""
    if request.node.get_closest_marker("faultfree") is not None:
        monkeypatch.delenv("REPRO_FAULT_PROFILE", raising=False)
        monkeypatch.delenv("REPRO_FAULT_SEED", raising=False)
