"""Every example script must run to completion and self-verify."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "halo_exchange_2d.py", "matrix_transpose_alltoall.py",
     "adaptive_selection.py", "noncontig_file_io.py",
     "pipeline_visualization.py", "one_sided_halo.py", "particle_exchange.py"],
)
def test_example_runs(script):
    path = os.path.join(EXAMPLES, script)
    proc = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"
