"""Determinism properties of seeded fault injection.

* same seed -> byte-identical injection schedule, timings and trace;
* distinct seeds -> distinct injection schedules;
* inert plan -> byte-identical behaviour to a cluster with no plan at
  all (zero RNG draws, zero injector overhead in the event stream).
"""

import json

import pytest

from repro import Cluster, types
from repro.faults import FaultPlan
from tests.mpi.helpers import check_blocks, fill_blocks

DT = types.vector(96, 512, 1024, types.BYTE)


def run_once(plan, trace=False):
    """One 2-rank bidirectional exchange; returns (cluster, result)."""

    def program(mpi):
        peer = 1 - mpi.rank
        sbuf = mpi.alloc(DT.flatten(1).span + 64)
        rbuf = mpi.alloc(DT.flatten(1).span + 64)
        fill_blocks(mpi, sbuf, DT, 1, seed=mpi.rank)
        rs = yield from mpi.isend(sbuf, DT, 1, peer, tag=0)
        rr = yield from mpi.irecv(rbuf, DT, 1, peer, tag=0)
        yield from mpi.waitall([rs, rr])
        check_blocks(mpi, rbuf, DT, 1, seed=peer)
        return mpi.now

    kwargs = {"trace": trace}
    if plan is not None:
        kwargs["fault_plan"] = plan
    cluster = Cluster(2, scheme="adaptive", **kwargs)
    result = cluster.run(program)
    return cluster, result


class TestSameSeed:
    def test_identical_schedule_and_timings(self):
        plan = FaultPlan.from_profile("lossy", seed=11)
        c1, r1 = run_once(plan)
        c2, r2 = run_once(plan)
        assert c1.fault_injector.schedule() == c2.fault_injector.schedule()
        assert r1.time_us == r2.time_us
        assert r1.values == r2.values

    def test_identical_trace(self):
        plan = FaultPlan.from_profile("flaky-hca", seed=5)
        c1, _ = run_once(plan, trace=True)
        c2, _ = run_once(plan, trace=True)
        t1 = [(i.start, i.end, i.node, i.category, i.detail)
              for i in c1.tracer.records]
        t2 = [(i.start, i.end, i.node, i.category, i.detail)
              for i in c2.tracer.records]
        assert t1 == t2

    def test_identical_metrics(self):
        plan = FaultPlan.from_profile("lossy", seed=23)
        c1, _ = run_once(plan)
        c2, _ = run_once(plan)
        assert json.dumps(c1.metrics.snapshot(), sort_keys=True) == \
            json.dumps(c2.metrics.snapshot(), sort_keys=True)


class TestDistinctSeeds:
    def test_schedules_diverge(self):
        # a high-rate plan so a handful of seeds cannot all coincide
        base = FaultPlan.from_profile("lossy", seed=0)
        schedules = set()
        for seed in range(4):
            c, _ = run_once(base.with_overrides(seed=seed))
            schedules.add(c.fault_injector.schedule())
        assert len(schedules) > 1


class TestInertPlan:
    # compares against a cluster built with *no* plan, which would pick
    # up the env profile — pin the environment back to inert
    pytestmark = pytest.mark.faultfree

    def test_no_injector_installed(self):
        c, _ = run_once(FaultPlan())
        assert c.fault_injector is None

    def test_timings_match_unfaulted_cluster(self):
        c_plain, r_plain = run_once(None)
        c_inert, r_inert = run_once(FaultPlan.from_profile("none", seed=99))
        assert r_plain.time_us == r_inert.time_us
        assert r_plain.values == r_inert.values

    def test_event_stream_identical_to_unfaulted(self):
        c_plain, _ = run_once(None, trace=True)
        c_inert, _ = run_once(FaultPlan(), trace=True)
        t_plain = [(i.start, i.end, i.node, i.category, i.detail)
                   for i in c_plain.tracer.records]
        t_inert = [(i.start, i.end, i.node, i.category, i.detail)
                   for i in c_inert.tracer.records]
        assert t_plain == t_inert

    def test_no_fault_counters_created(self):
        c, _ = run_once(FaultPlan())
        names = {row["name"] for row in c.metrics.snapshot()}
        assert not any(n.startswith(("faults.", "qp.", "rndv.")) for n in names)
