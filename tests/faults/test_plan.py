"""FaultPlan value-object and profile behaviour."""

import pytest

from repro.faults import FAULT_PROFILES, FaultPlan
from repro.faults.plan import ENV_PROFILE, ENV_SEED


class TestPlan:
    def test_default_plan_is_inert(self):
        plan = FaultPlan()
        assert not plan.active
        assert plan.profile == "none"

    def test_any_positive_rate_activates(self):
        assert FaultPlan(ctrl_drop_rate=0.1).active
        assert FaultPlan(hard_fail_rate=0.001).active

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(cqe_error_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(rnr_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(degrade_factor=0.5)

    def test_with_overrides(self):
        plan = FaultPlan.from_profile("lossy", seed=9)
        tweaked = plan.with_overrides(ctrl_drop_rate=0.5)
        assert tweaked.ctrl_drop_rate == 0.5
        assert tweaked.seed == 9
        # original unchanged (frozen)
        assert plan.ctrl_drop_rate == FAULT_PROFILES["lossy"]["ctrl_drop_rate"]

    def test_describe_mentions_profile_and_seed(self):
        text = FaultPlan.from_profile("flaky-hca", seed=42).describe()
        assert "flaky-hca" in text and "42" in text
        assert "inert" in FaultPlan().describe()


class TestProfiles:
    def test_profile_names(self):
        assert set(FAULT_PROFILES) == {"none", "lossy", "flaky-hca"}

    def test_none_profile_inert(self):
        assert not FaultPlan.from_profile("none").active

    def test_lossy_and_flaky_active(self):
        assert FaultPlan.from_profile("lossy").active
        assert FaultPlan.from_profile("flaky-hca").active

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            FaultPlan.from_profile("chaos-monkey")

    def test_profile_name_normalized(self):
        assert FaultPlan.from_profile("  LOSSY ").profile == "lossy"


class TestFromEnv:
    def test_unset_environment_is_inert(self):
        assert not FaultPlan.from_env({}).active

    def test_profile_and_seed_from_env(self):
        plan = FaultPlan.from_env({ENV_PROFILE: "lossy", ENV_SEED: "17"})
        assert plan.profile == "lossy"
        assert plan.seed == 17
        assert plan.active

    def test_empty_values_treated_as_unset(self):
        plan = FaultPlan.from_env({ENV_PROFILE: "", ENV_SEED: ""})
        assert not plan.active
        assert plan.seed == 0
