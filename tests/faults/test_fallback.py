"""Graceful degradation: scheme fallback to Generic on QP hard failures."""

import pytest

from repro import Cluster, types
from repro.faults import FaultPlan
from repro.ib.verbs import QPState
from tests.mpi.helpers import check_blocks, fill_blocks

DT = types.vector(64, 512, 1024, types.BYTE)


def verified_send(cluster, dt=DT):
    def rank0(mpi):
        buf = mpi.alloc(dt.flatten(1).span + 64)
        fill_blocks(mpi, buf, dt, 1)
        yield from mpi.send(buf, dt, 1, dest=1, tag=0)
        return True

    def rank1(mpi):
        buf = mpi.alloc(dt.flatten(1).span + 64)
        yield from mpi.recv(buf, dt, 1, source=0, tag=0)
        return check_blocks(mpi, buf, dt, 1)

    res = cluster.run([rank0, rank1])
    assert all(res.values)
    return res


class TestFallback:
    def make_cluster(self, **kwargs):
        plan = FaultPlan.from_profile("lossy", seed=1).with_overrides(
            ctrl_drop_rate=0.0, cqe_error_rate=0.0, rnr_rate=0.0,
            link_degrade_rate=0.0,
        )
        # plan must stay active so the injector (and fallback logic) is
        # installed; hard failures are forced by hand below
        plan = plan.with_overrides(hard_fail_rate=1e-9)
        return Cluster(2, scheme="multi-w", fault_plan=plan, **kwargs)

    def poison_qp(self, cluster, rank=0, peer=1):
        """Push the control QP toward ``peer`` over the hard-failure
        threshold, as repeated unrecoverable send-queue errors would."""
        qp = cluster.contexts[rank].ctrl_qps[peer]
        for _ in range(cluster.cm.fallback_hard_failures):
            qp.set_error(QPState.SQE)
            qp.state = QPState.RTS  # recovered, but the strikes remain
        return qp

    def test_unhealthy_qp_falls_back_to_generic(self):
        cluster = self.make_cluster()
        self.poison_qp(cluster)
        verified_send(cluster)
        fallbacks = sum(
            cluster.metrics.counter_values("scheme.fallbacks").values()
        )
        assert fallbacks >= 1

    def test_healthy_qp_keeps_configured_scheme(self):
        cluster = self.make_cluster()
        verified_send(cluster)
        assert cluster.metrics.counter_values("scheme.fallbacks") == {}

    def test_rdma_healthy_recovers_after_cooldown(self):
        cluster = self.make_cluster()
        ctx = cluster.contexts[0]
        qp = self.poison_qp(cluster)
        assert not ctx.rdma_healthy(1)
        # outside the cooldown window the QP counts as healthy again
        cluster.sim.now = qp.last_hard_failure_us + cluster.cm.fallback_cooldown_us + 1
        assert ctx.rdma_healthy(1)

    @pytest.mark.faultfree  # specifically tests the no-injector build
    def test_fallback_never_triggers_without_injector(self):
        cluster = Cluster(2, scheme="multi-w")
        assert cluster.fault_injector is None
        verified_send(cluster)
        assert cluster.metrics.counter_values("scheme.fallbacks") == {}
