"""Data integrity under fault injection.

Every figure workload (fig08/fig09 column vectors, fig11 struct) must
complete with byte-correct payloads under every fault profile, and the
injected faults must actually exercise the recovery machinery (nonzero
retry / timeout counters under the lossy and flaky profiles).
"""

import pytest

from repro import Cluster
from repro.bench.workloads import column_vector, fig10_struct
from repro.faults import FaultPlan
from tests.mpi.helpers import ALL_SCHEMES, check_blocks, fill_blocks

PROFILES = ("none", "lossy", "flaky-hca")
SEED = 7


def plan_for(profile):
    return FaultPlan.from_profile(profile, seed=SEED)


def counter_total(cluster, name):
    return sum(cluster.metrics.counter_values(name).values())


def exchange(cluster, dt, repeats=1):
    """Bidirectional verified transfer between 2 ranks, ``repeats`` times."""

    def program(mpi):
        peer = 1 - mpi.rank
        span = dt.flatten(1).span + 64
        sbuf = mpi.alloc(span)
        rbuf = mpi.alloc(span)
        fill_blocks(mpi, sbuf, dt, 1, seed=100 + mpi.rank)
        for rep in range(repeats):
            rs = yield from mpi.isend(sbuf, dt, 1, peer, tag=rep)
            rr = yield from mpi.irecv(rbuf, dt, 1, peer, tag=rep)
            yield from mpi.waitall([rs, rr])
            check_blocks(mpi, rbuf, dt, 1, seed=100 + peer)
        return True

    res = cluster.run(program)
    assert all(res.values)
    return res


class TestFigureWorkloads:
    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("cols", [64, 512])
    def test_fig08_fig09_column_vector(self, profile, cols):
        wl = column_vector(cols)
        cluster = Cluster(2, scheme="adaptive", fault_plan=plan_for(profile))
        exchange(cluster, wl.datatype, repeats=3)

    @pytest.mark.parametrize("profile", PROFILES)
    def test_fig11_struct(self, profile):
        wl = fig10_struct(256)
        cluster = Cluster(2, scheme="adaptive", fault_plan=plan_for(profile))
        exchange(cluster, wl.datatype, repeats=2)

    @pytest.mark.parametrize("profile", ["lossy", "flaky-hca"])
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_every_scheme_survives_faults(self, profile, scheme):
        wl = column_vector(128)
        cluster = Cluster(2, scheme=scheme, fault_plan=plan_for(profile))
        exchange(cluster, wl.datatype, repeats=2)


class TestRecoveryExercised:
    def test_lossy_profile_hits_rendezvous_timeouts(self):
        wl = column_vector(256)
        cluster = Cluster(2, scheme="adaptive", fault_plan=plan_for("lossy"))
        exchange(cluster, wl.datatype, repeats=10)
        assert cluster.fault_injector.injected() > 0
        assert counter_total(cluster, "rndv.timeouts") > 0
        assert counter_total(cluster, "rndv.retransmits") > 0

    def test_flaky_profile_hits_transport_retries(self):
        wl = column_vector(256)
        cluster = Cluster(
            2, scheme="multi-w",
            fault_plan=plan_for("flaky-hca").with_overrides(cqe_error_rate=0.3),
        )
        exchange(cluster, wl.datatype, repeats=5)
        assert counter_total(cluster, "qp.retries") > 0

    def test_recovery_metrics_visible_in_snapshot(self):
        wl = column_vector(256)
        cluster = Cluster(2, scheme="adaptive", fault_plan=plan_for("lossy"))
        exchange(cluster, wl.datatype, repeats=10)
        names = {row["name"] for row in cluster.metrics.snapshot()}
        assert "faults.injected" in names
        assert "rndv.timeouts" in names

    def test_registration_retries_counted(self):
        wl = column_vector(128)
        plan = FaultPlan(profile="regtest", seed=3, reg_fail_rate=0.4)
        cluster = Cluster(2, scheme="multi-w", fault_plan=plan)
        exchange(cluster, wl.datatype, repeats=2)
        assert cluster.fault_injector.injected("reg_fail") > 0
        assert counter_total(cluster, "reg.retries") > 0

    def test_fault_spans_reach_chrome_trace(self):
        wl = column_vector(256)
        cluster = Cluster(
            2, scheme="adaptive", trace=True, fault_plan=plan_for("lossy")
        )
        exchange(cluster, wl.datatype, repeats=10)
        assert cluster.fault_injector.injected() > 0
        fault_records = [
            r for r in cluster.tracer.records if r.category == "fault"
        ]
        assert len(fault_records) >= cluster.fault_injector.injected()
