"""FaultInjector unit behaviour: hooks, recording, link windows."""

from repro.faults import FaultInjector, FaultPlan
from repro.mpi.messages import Credit, RndvReply, RndvStart
from repro.obs.metrics import MetricsRegistry
from repro.simulator import Simulator


def make(plan):
    sim = Simulator()
    metrics = MetricsRegistry()
    return sim, metrics, FaultInjector(sim, plan, metrics)


class TestDisabled:
    def test_inert_plan_disables_all_hooks(self):
        sim, metrics, inj = make(FaultPlan())
        assert not inj.enabled
        assert not inj.fail_send(0, 1)
        assert not inj.rnr(0, 1)
        assert not inj.hard_fail(0, 1)
        assert not inj.drop_ctrl(0, RndvStart(0, 0, 1, 64, "generic", 0))
        assert not inj.fail_registration(0, 4096)
        inj.maybe_degrade(0)
        assert inj.link_factor(0) == 1.0
        assert inj.schedule() == ()
        # nothing counted: the metrics registry stays untouched
        assert metrics.snapshot() == []

    def test_disabled_hooks_never_draw_rng(self):
        _sim, _metrics, inj = make(FaultPlan())
        state = inj._rng.getstate()
        inj.fail_send(0, 1)
        inj.rnr(0, 1)
        inj.hard_fail(0, 1)
        inj.fail_registration(0, 64)
        inj.maybe_degrade(0)
        inj.link_factor(0)
        assert inj._rng.getstate() == state


class TestHooks:
    def test_certain_rates_fire_and_record(self):
        plan = FaultPlan(profile="test", cqe_error_rate=1.0, rnr_rate=1.0,
                         reg_fail_rate=1.0, hard_fail_rate=1.0)
        _sim, metrics, inj = make(plan)
        assert inj.fail_send(0, 7)
        assert inj.rnr(1, 8)
        assert inj.hard_fail(0, 7)
        assert inj.fail_registration(1, 4096)
        kinds = [ev.kind for ev in inj.events]
        assert kinds == ["cqe_error", "rnr_nak", "hard_fail", "reg_fail"]
        assert inj.injected() == 4
        assert inj.injected("rnr_nak") == 1
        assert sum(metrics.counter_values("faults.injected").values()) == 4

    def test_zero_rates_never_fire(self):
        _sim, _metrics, inj = make(FaultPlan(ctrl_drop_rate=1.0))
        # plan is active (drop rate set) but the other rates are zero
        assert inj.enabled
        for _ in range(50):
            assert not inj.fail_send(0, 1)
            assert not inj.rnr(0, 1)
            assert not inj.hard_fail(0, 1)
            assert not inj.fail_registration(0, 64)

    def test_only_rendezvous_ctrl_droppable(self):
        _sim, _metrics, inj = make(FaultPlan(ctrl_drop_rate=1.0))
        assert inj.drop_ctrl(0, RndvStart(0, 0, 1, 64, "generic", 0))
        assert inj.drop_ctrl(0, RndvReply(msg_id=1))
        # credit/data traffic rides the reliable service: never dropped
        assert not inj.drop_ctrl(0, Credit(count=4))
        assert not inj.drop_ctrl(0, object())
        assert inj.injected("ctrl_drop") == 2


class TestLinkDegradation:
    def test_window_opens_and_expires(self):
        plan = FaultPlan(link_degrade_rate=1.0, degrade_factor=5.0,
                         degrade_duration_us=100.0)
        sim, metrics, inj = make(plan)
        inj.maybe_degrade(0)
        assert inj.link_factor(0) == 5.0
        assert metrics.gauge("ib.link_factor", 0).value == 5.0
        # other nodes unaffected
        assert inj.link_factor(1) == 1.0
        sim.now = 99.0
        assert inj.link_factor(0) == 5.0
        sim.now = 100.0
        assert inj.link_factor(0) == 1.0
        assert metrics.gauge("ib.link_factor", 0).value == 1.0

    def test_open_window_suppresses_new_draws(self):
        plan = FaultPlan(link_degrade_rate=1.0, degrade_duration_us=1000.0)
        _sim, _metrics, inj = make(plan)
        inj.maybe_degrade(0)
        inj.maybe_degrade(0)
        inj.maybe_degrade(0)
        assert inj.injected("link_degrade") == 1
