"""Unit tests for HCA/Node timing mechanics: CPU accounting, memory-bus
contention, DMA bracketing, timed memory management."""

import numpy as np
import pytest

from repro.ib import CostModel, Fabric, Opcode, SGE, SendWR
from repro.simulator import Simulator


def make_pair(cm=None):
    sim = Simulator()
    fabric = Fabric(sim, cm or CostModel.mellanox_2003())
    n0, n1 = fabric.connect_all(memory_capacity=64 << 20, n=2)
    return sim, n0, n1


def run(sim, gen):
    p = sim.process(gen)
    sim.run()
    return p.value


class TestCpuWork:
    def test_zero_cost_is_free(self):
        sim, n0, _ = make_pair()

        def prog():
            t0 = sim.now
            yield from n0.cpu_work(0.0)
            return sim.now - t0

        assert run(sim, prog()) == 0.0

    def test_cpu_serializes_work(self):
        sim, n0, _ = make_pair()
        order = []

        def worker(tag):
            yield from n0.cpu_work(10.0, tag)
            order.append((tag, sim.now))

        sim.process(worker("a"))
        sim.process(worker("b"))
        sim.run()
        assert order == [("a", 10.0), ("b", 20.0)]

    def test_busy_time_tracked(self):
        sim, n0, _ = make_pair()

        def prog():
            yield from n0.cpu_work(25.0)

        run(sim, prog())
        assert n0.cpu.busy_time == 25.0


class TestCopyContention:
    def test_uncontended_copy_matches_model(self):
        sim, n0, _ = make_pair()
        cm = n0.cm

        def prog():
            t0 = sim.now
            yield from n0.copy_work(1 << 20, 0)
            return sim.now - t0

        dt = run(sim, prog())
        assert dt == pytest.approx(cm.copy_startup + (1 << 20) / cm.copy_bandwidth)

    def test_contended_copy_slows(self):
        sim, n0, _ = make_pair()
        cm = n0.cm

        def prog():
            n0.dma_active = 1  # pretend a DMA stream is running
            t0 = sim.now
            yield from n0.copy_work(1 << 20, 0)
            return sim.now - t0

        dt = run(sim, prog())
        expect = cm.copy_startup + (1 << 20) * (1 + cm.membus_contention) / cm.copy_bandwidth
        assert dt == pytest.approx(expect)

    def test_penalty_scales_bytes(self):
        sim, n0, _ = make_pair()
        cm = n0.cm

        def prog():
            t0 = sim.now
            yield from n0.copy_work(1 << 20, 0, penalty=2.0)
            return sim.now - t0

        dt = run(sim, prog())
        assert dt == pytest.approx(cm.copy_startup + 2 * (1 << 20) / cm.copy_bandwidth)

    def test_injection_raises_dma_active_during_transfer(self):
        """A concurrent copy during an RDMA write samples dma_active > 0."""
        sim, n0, n1 = make_pair()
        size = 1 << 20
        src = n0.memory.alloc(size)
        dst = n1.memory.alloc(size)
        mrs = n0.memory.register(src, size)
        mrd = n1.memory.register(dst, size)
        qp = n0.hca.qps[1]
        seen = []

        def sender():
            yield from qp.post_send(
                SendWR(Opcode.RDMA_WRITE, sges=[SGE(src, size, mrs.lkey)],
                       remote_addr=dst, rkey=mrd.rkey)
            )

        def prober():
            # sample mid-transfer (wire time for 1 MB ~ 1.1 ms)
            yield sim.timeout(500.0)
            seen.append((n0.dma_active, n1.dma_active))
            yield sim.timeout(5000.0)
            seen.append((n0.dma_active, n1.dma_active))

        sim.process(sender())
        sim.process(prober())
        sim.run()
        mid, after = seen
        assert mid[0] >= 1  # sender gather DMA active mid-transfer
        assert after == (0, 0)  # everything quiesced afterwards

    def test_remote_dma_bracket_covers_delivery(self):
        sim, n0, n1 = make_pair()
        size = 1 << 20
        src = n0.memory.alloc(size)
        dst = n1.memory.alloc(size)
        mrs = n0.memory.register(src, size)
        mrd = n1.memory.register(dst, size)
        qp = n0.hca.qps[1]
        seen = []

        def sender():
            yield from qp.post_send(
                SendWR(Opcode.RDMA_WRITE, sges=[SGE(src, size, mrs.lkey)],
                       remote_addr=dst, rkey=mrd.rkey)
            )

        def prober():
            yield sim.timeout(600.0)  # after latency, mid-stream
            seen.append(n1.dma_active)

        sim.process(sender())
        sim.process(prober())
        sim.run()
        assert seen == [1]


class TestTimedMemoryManagement:
    def test_malloc_charges_page_faults(self):
        sim, n0, _ = make_pair()
        cm = n0.cm

        def prog():
            t0 = sim.now
            addr = yield from n0.malloc(1 << 20)
            return addr, sim.now - t0

        addr, dt = run(sim, prog())
        assert dt == pytest.approx(cm.malloc_time(1 << 20))

    def test_malloc_uncharged_option(self):
        sim, n0, _ = make_pair()

        def prog():
            t0 = sim.now
            yield from n0.malloc(1 << 20, charge=False)
            return sim.now - t0

        assert run(sim, prog()) == 0.0

    def test_register_charges_and_books(self):
        sim, n0, _ = make_pair()
        cm = n0.cm

        def prog():
            addr = n0.memory.alloc(1 << 16)
            t0 = sim.now
            mr = yield from n0.register(addr, 1 << 16)
            return mr, sim.now - t0

        mr, dt = run(sim, prog())
        assert dt == pytest.approx(cm.reg_time(1 << 16))
        assert mr in n0.memory.registered_regions

    def test_deregister_charges(self):
        sim, n0, _ = make_pair()
        cm = n0.cm

        def prog():
            addr = n0.memory.alloc(1 << 16)
            mr = yield from n0.register(addr, 1 << 16, charge=False)
            t0 = sim.now
            yield from n0.deregister(mr)
            return sim.now - t0

        assert run(sim, prog()) == pytest.approx(cm.dereg_time(1 << 16))

    def test_mfree_returns_memory(self):
        sim, n0, _ = make_pair()

        def prog():
            addr = yield from n0.malloc(1 << 16)
            yield from n0.mfree(addr)

        run(sim, prog())
        # full capacity available again
        big = n0.memory.alloc(60 << 20)
        assert big >= 0


class TestStatsCounters:
    def test_bytes_injected_counts_payload(self):
        sim, n0, n1 = make_pair()
        src = n0.memory.alloc(1000)
        dst = n1.memory.alloc(1000)
        mrs = n0.memory.register(src, 1000)
        mrd = n1.memory.register(dst, 1000)
        qp = n0.hca.qps[1]

        def sender():
            yield from qp.post_send(
                SendWR(Opcode.RDMA_WRITE, sges=[SGE(src, 1000, mrs.lkey)],
                       remote_addr=dst, rkey=mrd.rkey)
            )

        sim.process(sender())
        sim.run()
        assert n0.hca.bytes_injected == 1000
        assert n0.hca.descriptors_processed == 1

    def test_extra_bytes_count_on_wire_not_in_memory(self):
        sim, n0, n1 = make_pair()
        qp0, qp1 = n0.hca.qps[1], n1.hca.qps[0]
        from repro.ib.verbs import RecvWR

        def receiver():
            qp1.post_recv_nocost(RecvWR())
            cqe = yield qp1.recv_cq.wait()
            return cqe

        def sender():
            yield from qp0.post_send(
                SendWR(Opcode.SEND, payload="hdr", extra_bytes=64)
            )

        rp = sim.process(receiver())
        sim.process(sender())
        sim.run()
        assert n0.hca.bytes_injected == 64  # header occupied the wire
        assert rp.value.byte_len == 0  # but no data landed
