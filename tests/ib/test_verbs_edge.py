"""Edge-case tests for the verbs layer: list post, signaling, polled
writes, queue-pair misuse."""

import numpy as np
import pytest

from repro.ib import (
    CostModel,
    Fabric,
    Opcode,
    ProtectionError,
    RecvWR,
    SGE,
    SendWR,
)
from repro.simulator import SimulationError, Simulator


@pytest.fixture
def net():
    sim = Simulator()
    fabric = Fabric(sim, CostModel.mellanox_2003())
    nodes = fabric.connect_all(memory_capacity=16 << 20, n=2)
    return sim, nodes[0], nodes[1]


def setup_write(n0, n1, size=1024, count=1):
    srcs, mrs = [], []
    for k in range(count):
        s = n0.memory.alloc(size)
        n0.memory.view(s, size)[:] = (k + 1) % 251
        srcs.append(s)
        mrs.append(n0.memory.register(s, size))
    dst = n1.memory.alloc(size * count)
    mrd = n1.memory.register(dst, size * count)
    return srcs, mrs, dst, mrd


class TestListPost:
    def test_list_post_single_cpu_charge(self, net):
        sim, n0, n1 = net
        cm = n0.cm
        srcs, mrs, dst, mrd = setup_write(n0, n1, count=8)
        qp = n0.hca.qps[1]
        wrs = [
            SendWR(
                Opcode.RDMA_WRITE,
                sges=[SGE(srcs[k], 1024, mrs[k].lkey)],
                remote_addr=dst + k * 1024,
                rkey=mrd.rkey,
                signaled=(k == 7),
                wr_id=k,
            )
            for k in range(8)
        ]

        def prog():
            t0 = sim.now
            yield from qp.post_send_list(wrs)
            post_time = sim.now - t0
            yield qp.send_cq.wait()
            return post_time

        p = sim.process(prog())
        sim.run()
        assert p.value == pytest.approx(cm.post_time(8, list_post=True))
        assert p.value < cm.post_time(8)
        # all data arrived in order
        for k in range(8):
            assert (n1.memory.view(dst + k * 1024, 1024) == (k + 1) % 251).all()

    def test_list_post_validates_every_wr(self, net):
        sim, n0, n1 = net
        qp = n0.hca.qps[1]
        good = SendWR(Opcode.RDMA_WRITE, sges=[], remote_addr=0, rkey=0)
        bad = SendWR(Opcode.RDMA_WRITE, sges=[SGE(0, 16, 9999)])

        def prog():
            yield from qp.post_send_list([good, bad])

        sim.process(prog())
        with pytest.raises(ProtectionError):
            sim.run()


class TestSignaling:
    def test_unsignaled_wr_produces_no_cqe(self, net):
        sim, n0, n1 = net
        srcs, mrs, dst, mrd = setup_write(n0, n1)
        qp = n0.hca.qps[1]

        def prog():
            yield from qp.post_send(
                SendWR(
                    Opcode.RDMA_WRITE,
                    sges=[SGE(srcs[0], 1024, mrs[0].lkey)],
                    remote_addr=dst,
                    rkey=mrd.rkey,
                    signaled=False,
                )
            )
            yield sim.timeout(100.0)

        sim.process(prog())
        sim.run()
        assert len(qp.send_cq) == 0
        assert np.array_equal(n0.memory.view(srcs[0], 1024), n1.memory.view(dst, 1024))


class TestPolledWrite:
    def test_polled_write_notifies_without_descriptor(self, net):
        sim, n0, n1 = net
        srcs, mrs, dst, mrd = setup_write(n0, n1)
        qp0, qp1 = n0.hca.qps[1], n1.hca.qps[0]
        # NOTE: no receive descriptor posted on qp1

        def sender():
            yield from qp0.post_send(
                SendWR(
                    Opcode.RDMA_WRITE_POLLED,
                    sges=[SGE(srcs[0], 1024, mrs[0].lkey)],
                    remote_addr=dst,
                    rkey=mrd.rkey,
                    payload="hello",
                )
            )

        def receiver():
            cqe = yield qp1.recv_cq.wait()
            return cqe

        rp = sim.process(receiver())
        sim.process(sender())
        sim.run()
        assert rp.value.payload == "hello"
        assert rp.value.wr_id == ("poll", dst)
        assert rp.value.byte_len == 1024
        assert np.array_equal(n0.memory.view(srcs[0], 1024), n1.memory.view(dst, 1024))

    def test_polled_write_checks_protection(self, net):
        sim, n0, n1 = net
        srcs, mrs, _dst, _mrd = setup_write(n0, n1)
        unregistered = n1.memory.alloc(1024)
        qp0 = n0.hca.qps[1]

        def sender():
            yield from qp0.post_send(
                SendWR(
                    Opcode.RDMA_WRITE_POLLED,
                    sges=[SGE(srcs[0], 1024, mrs[0].lkey)],
                    remote_addr=unregistered,
                    rkey=12345,
                )
            )

        sim.process(sender())
        with pytest.raises(ProtectionError):
            sim.run()

    def test_polled_faster_than_send(self, net):
        """The [19] gap: no responder receive-WQE processing."""
        sim, n0, n1 = net
        srcs, mrs, dst, mrd = setup_write(n0, n1)
        qp0, qp1 = n0.hca.qps[1], n1.hca.qps[0]
        qp1.post_recv_nocost(
            RecvWR(sges=[SGE(dst, 1024, mrd.lkey)])
        )
        stamps = {}

        def receiver():
            cqe = yield qp1.recv_cq.wait()
            stamps["first"] = sim.now
            cqe = yield qp1.recv_cq.wait()
            stamps["second"] = sim.now

        def sender():
            t0 = sim.now
            yield from qp0.post_send(
                SendWR(Opcode.SEND, sges=[SGE(srcs[0], 1024, mrs[0].lkey)])
            )
            yield sim.timeout(50.0)
            t1 = sim.now
            yield from qp0.post_send(
                SendWR(
                    Opcode.RDMA_WRITE_POLLED,
                    sges=[SGE(srcs[0], 1024, mrs[0].lkey)],
                    remote_addr=dst,
                    rkey=mrd.rkey,
                )
            )
            return t0, t1

        rp = sim.process(receiver())
        sp = sim.process(sender())
        sim.run()
        t0, t1 = sp.value
        send_delay = stamps["first"] - t0
        polled_delay = stamps["second"] - t1
        assert polled_delay < send_delay


class TestQueuePairMisuse:
    def test_post_on_unconnected_qp(self, net):
        sim, n0, _n1 = net
        lone = n0.hca.create_qp()

        def prog():
            yield from lone.post_send(SendWR(Opcode.SEND))

        sim.process(prog())
        with pytest.raises(SimulationError, match="not connected"):
            sim.run()

    def test_send_with_remote_addr_rejected(self, net):
        with pytest.raises(SimulationError):
            SendWR(Opcode.SEND, remote_addr=100).validate()
