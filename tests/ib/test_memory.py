"""Unit tests for the node address space, allocator and MR table."""

import numpy as np
import pytest

from repro.ib.memory import NodeMemory, ProtectionError


@pytest.fixture
def mem():
    return NodeMemory(node=0, capacity=1 << 20)


class TestAllocator:
    def test_alloc_returns_aligned(self, mem):
        addr = mem.alloc(100, align=64)
        assert addr % 64 == 0

    def test_alloc_distinct_ranges(self, mem):
        a = mem.alloc(1000)
        b = mem.alloc(1000)
        assert a + 1000 <= b or b + 1000 <= a

    def test_free_then_realloc_reuses(self, mem):
        a = mem.alloc(1000)
        mem.free(a)
        b = mem.alloc(1000)
        assert b == a

    def test_exhaustion_raises(self, mem):
        with pytest.raises(MemoryError):
            mem.alloc(2 << 20)

    def test_free_unknown_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.free(12345)

    def test_coalescing(self, mem):
        a = mem.alloc(mem.capacity // 4, align=1)
        b = mem.alloc(mem.capacity // 4, align=1)
        c = mem.alloc(mem.capacity // 4, align=1)
        mem.free(a)
        mem.free(c)
        mem.free(b)  # middle free must coalesce with both neighbours
        big = mem.alloc(mem.capacity, align=1)  # full space available again
        assert big == 0

    def test_bad_size(self, mem):
        with pytest.raises(ValueError):
            mem.alloc(0)

    def test_bad_align(self, mem):
        with pytest.raises(ValueError):
            mem.alloc(8, align=3)

    def test_peak_tracking(self, mem):
        a = mem.alloc(1000)
        b = mem.alloc(2000)
        mem.free(a)
        mem.free(b)
        assert mem.peak_allocated == 3000

    def test_alloc_size(self, mem):
        a = mem.alloc(777)
        assert mem.alloc_size(a) == 777


class TestViews:
    def test_view_is_writable_window(self, mem):
        addr = mem.alloc(16)
        mem.view(addr, 16)[:] = np.arange(16, dtype=np.uint8)
        assert list(mem.view(addr, 4)) == [0, 1, 2, 3]

    def test_view_bounds_checked(self, mem):
        with pytest.raises(ValueError):
            mem.view(mem.capacity - 4, 8)

    def test_view_as_typed(self, mem):
        addr = mem.alloc(64)
        arr = mem.view_as(addr, (4, 4), np.int32)
        arr[:] = 7
        assert mem.view(addr, 64).view(np.int32).sum() == 7 * 16


class TestRegistration:
    def test_register_returns_keys(self, mem):
        addr = mem.alloc(4096)
        mr = mem.register(addr, 4096)
        assert mr.lkey != mr.rkey

    def test_check_local_passes_inside(self, mem):
        addr = mem.alloc(4096)
        mr = mem.register(addr, 4096)
        mem.check_local(addr + 100, 200, mr.lkey)

    def test_check_local_rejects_outside(self, mem):
        addr = mem.alloc(4096)
        mr = mem.register(addr, 4096)
        with pytest.raises(ProtectionError):
            mem.check_local(addr, 5000, mr.lkey)

    def test_check_local_rejects_unknown_key(self, mem):
        with pytest.raises(ProtectionError):
            mem.check_local(0, 4, 99999)

    def test_check_remote(self, mem):
        addr = mem.alloc(4096)
        mr = mem.register(addr, 4096)
        mem.check_remote(addr, 4096, mr.rkey)
        with pytest.raises(ProtectionError):
            mem.check_remote(addr, 4097, mr.rkey)
        with pytest.raises(ProtectionError):
            mem.check_remote(addr, 10, 424242)

    def test_deregister_removes(self, mem):
        addr = mem.alloc(4096)
        mr = mem.register(addr, 4096)
        mem.deregister(mr)
        with pytest.raises(ProtectionError):
            mem.check_local(addr, 4, mr.lkey)

    def test_deregister_twice_rejected(self, mem):
        addr = mem.alloc(4096)
        mr = mem.register(addr, 4096)
        mem.deregister(mr)
        with pytest.raises(ValueError):
            mem.deregister(mr)

    def test_registered_bytes(self, mem):
        a = mem.alloc(4096)
        b = mem.alloc(8192)
        mem.register(a, 4096)
        mem.register(b, 8192)
        assert mem.registered_bytes == 12288

    def test_bad_region(self, mem):
        with pytest.raises(ValueError):
            mem.register(0, 0)
        with pytest.raises(ValueError):
            mem.register(mem.capacity - 10, 100)
