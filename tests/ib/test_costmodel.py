"""Unit tests for the cost model."""

import math

import pytest

from repro.ib.costmodel import MB, CostModel


@pytest.fixture
def cm():
    return CostModel.mellanox_2003()


class TestPages:
    def test_zero_bytes(self, cm):
        assert cm.pages(0) == 0

    def test_single_page(self, cm):
        assert cm.pages(1) == 1
        assert cm.pages(4096) == 1

    def test_page_boundary(self, cm):
        assert cm.pages(4097) == 2

    def test_unaligned_start_spans_extra_page(self, cm):
        # 4096 bytes starting at offset 1 touch two pages
        assert cm.pages(4096, addr=1) == 2
        assert cm.pages(4096, addr=0) == 1


class TestTimes:
    def test_copy_time_zero(self, cm):
        assert cm.copy_time(0) == 0.0

    def test_copy_time_linear(self, cm):
        t1 = cm.copy_time(1 * MB)
        t2 = cm.copy_time(2 * MB)
        assert t2 - t1 == pytest.approx(1 * MB / cm.copy_bandwidth)

    def test_wire_comparable_to_copy(self, cm):
        # the paper's premise: wire bandwidth comparable to (here slightly
        # above) effective memcpy bandwidth
        assert 0.7 < cm.wire_bandwidth / cm.copy_bandwidth < 1.6

    def test_descriptor_time_includes_startup(self, cm):
        assert cm.descriptor_time(0, 1) == pytest.approx(cm.hca_startup)

    def test_descriptor_time_per_sge(self, cm):
        base = cm.descriptor_time(1000, 1)
        many = cm.descriptor_time(1000, 11)
        assert many - base == pytest.approx(10 * cm.hca_per_sge)

    def test_post_time_single_vs_list(self, cm):
        assert cm.post_time(10) == pytest.approx(10 * cm.post_descriptor)
        listed = cm.post_time(10, list_post=True)
        assert listed == pytest.approx(cm.post_list_first + 9 * cm.post_list_extra)
        assert listed < cm.post_time(10)

    def test_post_time_zero(self, cm):
        assert cm.post_time(0) == 0.0
        assert cm.post_time(0, list_post=True) == 0.0

    def test_pack_time_counts_blocks(self, cm):
        few = cm.pack_time(4096, 1)
        many = cm.pack_time(4096, 64)
        assert many > few

    def test_reg_scales_with_pages(self, cm):
        assert cm.reg_time(1 * MB) > cm.reg_time(4096)
        assert cm.reg_time(1 * MB) == pytest.approx(
            cm.reg_base + 256 * cm.reg_per_page
        )

    def test_malloc_includes_page_faults(self, cm):
        assert cm.malloc_time(1 * MB) == pytest.approx(
            cm.malloc_base + 256 * cm.page_fault
        )


class TestSegmentRule:
    """The paper's static segment-size rule (Section 7.2)."""

    def test_large_message_uses_max_segment(self, cm):
        assert cm.segment_size_for(1 * MB) == 128 * 1024
        assert cm.segment_size_for(4 * MB) == 128 * 1024

    def test_medium_message_at_least_two_segments(self, cm):
        for size in (16 * 1024, 64 * 1024, 100 * 1024, MB - 1):
            seg = cm.segment_size_for(size)
            assert seg <= 128 * 1024
            assert math.ceil(size / seg) >= 2, size

    def test_small_message_single_segment(self, cm):
        assert cm.segment_size_for(8 * 1024) == 8 * 1024
        assert cm.segment_size_for(100) == 100


class TestPresets:
    def test_overrides(self, cm):
        cm2 = cm.with_overrides(wire_latency=9.9)
        assert cm2.wire_latency == 9.9
        assert cm.wire_latency != 9.9  # original untouched

    def test_presets_differ(self):
        assert CostModel.fast_network().wire_bandwidth > CostModel.mellanox_2003().wire_bandwidth
        assert CostModel.slow_network().wire_bandwidth < CostModel.mellanox_2003().wire_bandwidth

    def test_frozen(self, cm):
        with pytest.raises(Exception):
            cm.wire_latency = 1.0
