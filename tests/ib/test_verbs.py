"""Integration tests for the verbs layer: channel and memory semantics.

Each test builds a two-node fabric, runs small generator programs as
simulated processes, and checks both data integrity (bytes really moved)
and protocol semantics (descriptor matching, completions, protection).
"""

import numpy as np
import pytest

from repro.ib import (
    MAX_SGE,
    CostModel,
    Fabric,
    Opcode,
    ProtectionError,
    RecvWR,
    SGE,
    SendWR,
)
from repro.simulator import SimulationError, Simulator


@pytest.fixture
def net():
    """(sim, fabric, [node0, node1]) with one connected QP pair."""
    sim = Simulator()
    cm = CostModel.mellanox_2003()
    fabric = Fabric(sim, cm)
    nodes = fabric.connect_all(memory_capacity=4 << 20, n=2)
    return sim, fabric, nodes


def fill(node, size, pattern):
    addr = node.memory.alloc(size)
    node.memory.view(addr, size)[:] = np.arange(size, dtype=np.uint8) * pattern % 251
    return addr


class TestChannelSemantics:
    def test_send_recv_moves_bytes(self, net):
        sim, fabric, (n0, n1) = net
        src = fill(n0, 1024, 3)
        dst = n1.memory.alloc(1024)
        mr_src = n0.memory.register(src, 1024)
        mr_dst = n1.memory.register(dst, 1024)
        qp0, qp1 = n0.hca.qps[1], n1.hca.qps[0]

        def receiver():
            yield from qp1.post_recv(RecvWR(sges=[SGE(dst, 1024, mr_dst.lkey)], wr_id=7))
            cqe = yield qp1.recv_cq.wait()
            return cqe

        def sender():
            yield from qp0.post_send(
                SendWR(Opcode.SEND, sges=[SGE(src, 1024, mr_src.lkey)], wr_id=1)
            )
            cqe = yield qp0.send_cq.wait()
            return cqe

        rp = sim.process(receiver())
        sp = sim.process(sender())
        sim.run()
        assert np.array_equal(n0.memory.view(src, 1024), n1.memory.view(dst, 1024))
        assert rp.value.wr_id == 7 and rp.value.is_recv
        assert rp.value.byte_len == 1024
        assert sp.value.wr_id == 1

    def test_send_without_recv_descriptor_is_rnr_error(self, net):
        sim, fabric, (n0, n1) = net
        src = fill(n0, 64, 1)
        mr = n0.memory.register(src, 64)
        qp0 = n0.hca.qps[1]

        def sender():
            yield from qp0.post_send(
                SendWR(Opcode.SEND, sges=[SGE(src, 64, mr.lkey)])
            )

        sim.process(sender())
        with pytest.raises(SimulationError, match="receiver-not-ready"):
            sim.run()

    def test_sends_match_recvs_in_fifo_order(self, net):
        sim, fabric, (n0, n1) = net
        qp0, qp1 = n0.hca.qps[1], n1.hca.qps[0]
        srcs = [fill(n0, 16, k + 1) for k in range(3)]
        mrs = [n0.memory.register(s, 16) for s in srcs]
        dsts = [n1.memory.alloc(16) for _ in range(3)]
        mrd = [n1.memory.register(d, 16) for d in dsts]
        got = []

        def receiver():
            for k in range(3):
                yield from qp1.post_recv(
                    RecvWR(sges=[SGE(dsts[k], 16, mrd[k].lkey)], wr_id=k)
                )
            for _ in range(3):
                cqe = yield qp1.recv_cq.wait()
                got.append(cqe.wr_id)

        def sender():
            for k in range(3):
                yield from qp0.post_send(
                    SendWR(Opcode.SEND, sges=[SGE(srcs[k], 16, mrs[k].lkey)], wr_id=k)
                )

        sim.process(receiver())
        sim.process(sender())
        sim.run()
        assert got == [0, 1, 2]
        for k in range(3):
            assert np.array_equal(
                n0.memory.view(srcs[k], 16), n1.memory.view(dsts[k], 16)
            )

    def test_send_payload_object_delivered(self, net):
        sim, fabric, (n0, n1) = net
        qp0, qp1 = n0.hca.qps[1], n1.hca.qps[0]
        dst = n1.memory.alloc(64)
        mrd = n1.memory.register(dst, 64)

        def receiver():
            yield from qp1.post_recv(RecvWR(sges=[SGE(dst, 64, mrd.lkey)]))
            cqe = yield qp1.recv_cq.wait()
            return cqe.payload

        def sender():
            yield from qp0.post_send(
                SendWR(Opcode.SEND, payload={"kind": "rndv_start", "size": 9})
            )

        rp = sim.process(receiver())
        sim.process(sender())
        sim.run()
        assert rp.value == {"kind": "rndv_start", "size": 9}

    def test_oversized_send_rejected(self, net):
        sim, fabric, (n0, n1) = net
        qp0, qp1 = n0.hca.qps[1], n1.hca.qps[0]
        src = fill(n0, 128, 1)
        mrs = n0.memory.register(src, 128)
        dst = n1.memory.alloc(64)
        mrd = n1.memory.register(dst, 64)

        def receiver():
            yield from qp1.post_recv(RecvWR(sges=[SGE(dst, 64, mrd.lkey)]))

        def sender():
            yield from qp0.post_send(
                SendWR(Opcode.SEND, sges=[SGE(src, 128, mrs.lkey)])
            )

        sim.process(receiver())
        sim.process(sender())
        with pytest.raises(SimulationError, match="overruns"):
            sim.run()


class TestRDMAWrite:
    def test_write_moves_bytes_one_sided(self, net):
        sim, fabric, (n0, n1) = net
        src = fill(n0, 4096, 5)
        dst = n1.memory.alloc(4096)
        mrs = n0.memory.register(src, 4096)
        mrd = n1.memory.register(dst, 4096)
        qp0 = n0.hca.qps[1]

        def sender():
            yield from qp0.post_send(
                SendWR(
                    Opcode.RDMA_WRITE,
                    sges=[SGE(src, 4096, mrs.lkey)],
                    remote_addr=dst,
                    rkey=mrd.rkey,
                )
            )
            yield qp0.send_cq.wait()

        sim.process(sender())
        sim.run()
        assert np.array_equal(n0.memory.view(src, 4096), n1.memory.view(dst, 4096))

    def test_write_gather_concatenates(self, net):
        """RDMA write gather: many local blocks -> one remote range."""
        sim, fabric, (n0, n1) = net
        blocks = [fill(n0, 100, k + 1) for k in range(8)]
        mrs = [n0.memory.register(b, 100) for b in blocks]
        dst = n1.memory.alloc(800)
        mrd = n1.memory.register(dst, 800)
        qp0 = n0.hca.qps[1]

        def sender():
            yield from qp0.post_send(
                SendWR(
                    Opcode.RDMA_WRITE,
                    sges=[SGE(b, 100, m.lkey) for b, m in zip(blocks, mrs)],
                    remote_addr=dst,
                    rkey=mrd.rkey,
                )
            )
            yield qp0.send_cq.wait()

        sim.process(sender())
        sim.run()
        expect = np.concatenate([n0.memory.view(b, 100) for b in blocks])
        assert np.array_equal(expect, n1.memory.view(dst, 800))

    def test_write_imm_consumes_recv_and_notifies(self, net):
        sim, fabric, (n0, n1) = net
        src = fill(n0, 256, 2)
        dst = n1.memory.alloc(256)
        mrs = n0.memory.register(src, 256)
        mrd = n1.memory.register(dst, 256)
        qp0, qp1 = n0.hca.qps[1], n1.hca.qps[0]

        def receiver():
            qp1.post_recv_nocost(RecvWR(wr_id=55))
            cqe = yield qp1.recv_cq.wait()
            return cqe

        def sender():
            yield from qp0.post_send(
                SendWR(
                    Opcode.RDMA_WRITE_IMM,
                    sges=[SGE(src, 256, mrs.lkey)],
                    remote_addr=dst,
                    rkey=mrd.rkey,
                    imm=0xBEEF,
                )
            )

        rp = sim.process(receiver())
        sim.process(sender())
        sim.run()
        assert rp.value.imm == 0xBEEF
        assert rp.value.wr_id == 55
        assert rp.value.opcode is Opcode.RDMA_WRITE_IMM
        assert np.array_equal(n0.memory.view(src, 256), n1.memory.view(dst, 256))

    def test_write_imm_requires_imm(self, net):
        with pytest.raises(SimulationError):
            SendWR(Opcode.RDMA_WRITE_IMM).validate()

    def test_plain_write_generates_no_remote_cqe(self, net):
        sim, fabric, (n0, n1) = net
        src = fill(n0, 64, 1)
        dst = n1.memory.alloc(64)
        mrs = n0.memory.register(src, 64)
        mrd = n1.memory.register(dst, 64)
        qp0, qp1 = n0.hca.qps[1], n1.hca.qps[0]

        def sender():
            yield from qp0.post_send(
                SendWR(
                    Opcode.RDMA_WRITE,
                    sges=[SGE(src, 64, mrs.lkey)],
                    remote_addr=dst,
                    rkey=mrd.rkey,
                )
            )
            yield qp0.send_cq.wait()

        sim.process(sender())
        sim.run()
        assert len(qp1.recv_cq) == 0

    def test_write_to_unregistered_remote_faults(self, net):
        sim, fabric, (n0, n1) = net
        src = fill(n0, 64, 1)
        mrs = n0.memory.register(src, 64)
        dst = n1.memory.alloc(64)  # NOT registered
        qp0 = n0.hca.qps[1]

        def sender():
            yield from qp0.post_send(
                SendWR(
                    Opcode.RDMA_WRITE,
                    sges=[SGE(src, 64, mrs.lkey)],
                    remote_addr=dst,
                    rkey=424242,
                )
            )

        sim.process(sender())
        with pytest.raises(ProtectionError):
            sim.run()

    def test_local_sge_must_be_registered(self, net):
        sim, fabric, (n0, n1) = net
        src = fill(n0, 64, 1)  # NOT registered
        qp0 = n0.hca.qps[1]

        def sender():
            yield from qp0.post_send(
                SendWR(Opcode.SEND, sges=[SGE(src, 64, 999)])
            )

        sim.process(sender())
        with pytest.raises(ProtectionError):
            sim.run()

    def test_sge_limit_enforced(self, net):
        sim, fabric, (n0, n1) = net
        wr = SendWR(
            Opcode.RDMA_WRITE,
            sges=[SGE(0, 1, 1)] * (MAX_SGE + 1),
        )
        with pytest.raises(SimulationError, match="SGE"):
            wr.validate()


class TestRDMARead:
    def test_read_scatter(self, net):
        """RDMA read scatter: one remote range -> many local blocks."""
        sim, fabric, (n0, n1) = net
        remote = fill(n1, 600, 7)
        mr_remote = n1.memory.register(remote, 600)
        locals_ = [n0.memory.alloc(200) for _ in range(3)]
        mrs = [n0.memory.register(b, 200) for b in locals_]
        qp0 = n0.hca.qps[1]

        def reader():
            yield from qp0.post_send(
                SendWR(
                    Opcode.RDMA_READ,
                    sges=[SGE(b, 200, m.lkey) for b, m in zip(locals_, mrs)],
                    remote_addr=remote,
                    rkey=mr_remote.rkey,
                )
            )
            cqe = yield qp0.send_cq.wait()
            return cqe

        p = sim.process(reader())
        sim.run()
        assert p.value.opcode is Opcode.RDMA_READ
        got = np.concatenate([n0.memory.view(b, 200) for b in locals_])
        assert np.array_equal(got, n1.memory.view(remote, 600))

    def test_read_slower_than_write(self, net):
        """RDMA read latency exceeds RDMA write latency (Section 5.2)."""
        sim, fabric, (n0, n1) = net
        src = fill(n0, 4096, 1)
        dst = n1.memory.alloc(4096)
        mrs = n0.memory.register(src, 4096)
        mrd = n1.memory.register(dst, 4096)
        qp0 = n0.hca.qps[1]

        def writer():
            t0 = sim.now
            yield from qp0.post_send(
                SendWR(
                    Opcode.RDMA_WRITE,
                    sges=[SGE(src, 4096, mrs.lkey)],
                    remote_addr=dst,
                    rkey=mrd.rkey,
                )
            )
            yield qp0.send_cq.wait()
            write_t = sim.now - t0
            t0 = sim.now
            yield from qp0.post_send(
                SendWR(
                    Opcode.RDMA_READ,
                    sges=[SGE(src, 4096, mrs.lkey)],
                    remote_addr=dst,
                    rkey=mrd.rkey,
                )
            )
            yield qp0.send_cq.wait()
            read_t = sim.now - t0
            return write_t, read_t

        p = sim.process(writer())
        sim.run()
        write_t, read_t = p.value
        assert read_t > write_t

    def test_read_from_unregistered_faults(self, net):
        sim, fabric, (n0, n1) = net
        remote = n1.memory.alloc(64)  # not registered
        local = n0.memory.alloc(64)
        mrl = n0.memory.register(local, 64)
        qp0 = n0.hca.qps[1]

        def reader():
            yield from qp0.post_send(
                SendWR(
                    Opcode.RDMA_READ,
                    sges=[SGE(local, 64, mrl.lkey)],
                    remote_addr=remote,
                    rkey=77,
                )
            )

        sim.process(reader())
        with pytest.raises(ProtectionError):
            sim.run()


class TestTiming:
    def test_gather_write_cheaper_than_many_writes(self, net):
        """One 16-SGE gather descriptor beats 16 single-block descriptors:
        the startup amortization that motivates RWG-UP."""
        sim, fabric, (n0, n1) = net
        nblk, blk = 16, 512
        blocks = [fill(n0, blk, k + 1) for k in range(nblk)]
        mrs = [n0.memory.register(b, blk) for b in blocks]
        dst = n1.memory.alloc(nblk * blk)
        mrd = n1.memory.register(dst, nblk * blk)
        qp0 = n0.hca.qps[1]

        def one_gather():
            t0 = sim.now
            yield from qp0.post_send(
                SendWR(
                    Opcode.RDMA_WRITE,
                    sges=[SGE(b, blk, m.lkey) for b, m in zip(blocks, mrs)],
                    remote_addr=dst,
                    rkey=mrd.rkey,
                )
            )
            yield qp0.send_cq.wait()
            return sim.now - t0

        p = sim.process(one_gather())
        sim.run()
        gather_t = p.value

        # fresh network for the many-writes variant
        sim2 = Simulator()
        fabric2 = Fabric(sim2, CostModel.mellanox_2003())
        m0, m1 = fabric2.connect_all(memory_capacity=4 << 20, n=2)
        blocks2 = []
        for k in range(nblk):
            a = m0.memory.alloc(blk)
            m0.memory.view(a, blk)[:] = k
            blocks2.append(a)
        mrs2 = [m0.memory.register(b, blk) for b in blocks2]
        dst2 = m1.memory.alloc(nblk * blk)
        mrd2 = m1.memory.register(dst2, nblk * blk)
        qp = m0.hca.qps[1]

        def many_writes():
            t0 = sim2.now
            for k in range(nblk):
                yield from qp.post_send(
                    SendWR(
                        Opcode.RDMA_WRITE,
                        sges=[SGE(blocks2[k], blk, mrs2[k].lkey)],
                        remote_addr=dst2 + k * blk,
                        rkey=mrd2.rkey,
                    )
                )
            for _ in range(nblk):
                yield qp.send_cq.wait()
            return sim2.now - t0

        p2 = sim2.process(many_writes())
        sim2.run()
        assert gather_t < p2.value

    def test_wire_time_scales_with_bytes(self, net):
        sim, fabric, (n0, n1) = net
        qp0 = n0.hca.qps[1]
        cm = fabric.cm
        times = {}
        for size in (1024, 1024 * 1024):
            src = n0.memory.alloc(size)
            dst = n1.memory.alloc(size)
            mrs = n0.memory.register(src, size)
            mrd = n1.memory.register(dst, size)

            def xfer(size=size, src=src, dst=dst, mrs=mrs, mrd=mrd):
                t0 = sim.now
                yield from qp0.post_send(
                    SendWR(
                        Opcode.RDMA_WRITE,
                        sges=[SGE(src, size, mrs.lkey)],
                        remote_addr=dst,
                        rkey=mrd.rkey,
                    )
                )
                yield qp0.send_cq.wait()
                return sim.now - t0

            p = sim.process(xfer())
            sim.run()
            times[size] = p.value
        delta = times[1024 * 1024] - times[1024]
        expect = (1024 * 1024 - 1024) / cm.wire_bandwidth
        assert delta == pytest.approx(expect, rel=0.05)


class TestFabric:
    def test_connect_all_mesh(self):
        sim = Simulator()
        fabric = Fabric(sim, CostModel.mellanox_2003())
        nodes = fabric.connect_all(memory_capacity=1 << 20, n=4)
        assert len(nodes) == 4
        for i, node in enumerate(nodes):
            assert set(node.hca.qps) == {j for j in range(4) if j != i}
            for j, qp in node.hca.qps.items():
                assert qp.peer is nodes[j].hca.qps[i]

    def test_double_connect_rejected(self):
        sim = Simulator()
        fabric = Fabric(sim, CostModel.mellanox_2003())
        n0 = fabric.add_node(1 << 20)
        n1 = fabric.add_node(1 << 20)
        a, b = n0.hca.create_qp(), n1.hca.create_qp()
        fabric.connect(a, b)
        with pytest.raises(SimulationError):
            fabric.connect(a, b)

    def test_self_connect_rejected(self):
        sim = Simulator()
        fabric = Fabric(sim, CostModel.mellanox_2003())
        n0 = fabric.add_node(1 << 20)
        qp = n0.hca.create_qp()
        with pytest.raises(SimulationError):
            fabric.connect(qp, qp)
