"""Calibration regression anchors (DESIGN.md Section 4).

These tests pin the simulated platform to the paper's testbed numbers so
future cost-model edits cannot silently drift the reproduction:

* large-message contiguous bandwidth ~ 840-870 MB/s,
* small-message contiguous latency in the single-digit microseconds,
* memcpy comparable to (somewhat below) the wire,
* registration costs that make "DT + reg" visibly painful.
"""

import numpy as np
import pytest

from repro import Cluster, CostModel, types
from repro.bench.runner import measure_bandwidth, measure_contig_pingpong
from repro.ib.costmodel import MB

# timing anchors are meaningless under fault injection
pytestmark = pytest.mark.faultfree


class TestContiguousAnchors:
    def test_small_message_latency_single_digit_us(self):
        lat = measure_contig_pingpong(8, iters=4)
        assert 4.0 < lat < 14.0, lat

    def test_large_message_bandwidth_near_wire(self):
        dt = types.contiguous(1 * MB, types.BYTE)
        bw = measure_bandwidth("bc-spup", dt, window=30)
        # contiguous transfers are zero-copy: most of the 870 MB/s wire
        assert 700 < bw < 880, bw

    def test_half_bandwidth_point_reasonable(self):
        """N1/2 (size reaching half of peak bandwidth) should sit in the
        single-digit-KB range, as on the real interconnect."""
        peak = measure_bandwidth("bc-spup", types.contiguous(1 * MB, types.BYTE), window=30)
        for size in (1024, 2048, 4096, 8192, 16384, 32768):
            bw = measure_bandwidth("bc-spup", types.contiguous(size, types.BYTE), window=30)
            if bw >= peak / 2:
                assert 2048 <= size <= 32768, size
                break
        else:
            pytest.fail("never reached half of peak bandwidth")


class TestCostStructureAnchors:
    def test_memcpy_below_wire(self):
        cm = CostModel.mellanox_2003()
        assert cm.copy_bandwidth < cm.wire_bandwidth
        assert cm.copy_bandwidth > 0.5 * cm.wire_bandwidth

    def test_registration_significant_vs_copy(self):
        """Registering 1 MB must cost a nontrivial fraction of copying
        it — the premise of Figure 14 and Section 6's trade-off."""
        cm = CostModel.mellanox_2003()
        reg = cm.reg_time(1 * MB)
        copy = cm.copy_time(1 * MB)
        assert 0.05 < reg / copy < 0.5, reg / copy

    def test_rdma_read_slower_than_write(self):
        cm = CostModel.mellanox_2003()
        assert cm.rdma_read_bandwidth < cm.wire_bandwidth

    def test_post_cost_vs_descriptor_time(self):
        """Single-post CPU cost must exceed the HCA's per-descriptor
        overhead for small payloads — otherwise Figure 13's list-post
        effect could not exist."""
        cm = CostModel.mellanox_2003()
        assert cm.post_descriptor > cm.descriptor_time(128, 1) - cm.wire_time(128)


class TestEndToEndAnchors:
    def test_datatype_quarter_of_contig(self):
        """The Figure 2 headline: datatype communication reaches no more
        than ~a quarter (here <= 0.35) of contiguous performance."""
        cols = 1024
        dt = types.vector(128, cols, 4096, types.INT)
        from repro.bench.runner import measure_pingpong

        datatype = measure_pingpong("generic", dt, iters=3)
        contig = measure_contig_pingpong(dt.size, iters=3)
        assert contig / datatype < 0.35

    def test_multiw_headline_factor(self):
        """Figure 8's headline: Multi-W improves 1 MB vector latency by
        ~3x (paper: 3.4x, ours: >= 2.4x)."""
        dt = types.vector(128, 2048, 4096, types.INT)
        from repro.bench.runner import measure_pingpong

        gen = measure_pingpong("generic", dt, iters=3)
        mw = measure_pingpong("multi-w", dt, iters=3)
        assert gen / mw > 2.4
