"""Unit tests for the metrics registry instruments."""

import pytest

from repro.obs.metrics import (
    DEFAULT_US_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        c = Counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_tracks_max(self):
        g = Gauge("depth")
        g.set(3)
        g.set(7)
        g.set(2)
        assert g.value == 2
        assert g.max_value == 7

    def test_inc_dec(self):
        g = Gauge("depth")
        g.inc(5)
        g.dec(2)
        assert g.value == 3
        assert g.max_value == 5


class TestHistogram:
    def test_bucket_assignment(self):
        h = Histogram("lat", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]
        assert h.count == 4
        assert h.total == 555.5
        assert h.mean == pytest.approx(138.875)

    def test_boundary_goes_to_lower_bucket(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        h.observe(1.0)
        h.observe(10.0)
        assert h.counts == [1, 1, 0]

    def test_requires_buckets(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())

    def test_mean_empty(self):
        h = Histogram("lat", buckets=DEFAULT_US_BUCKETS)
        assert h.mean == 0.0


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a", 0) is reg.counter("a", 0)
        assert reg.counter("a", 0) is not reg.counter("a", 1)
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h", 0) is reg.histogram("h", 0)

    def test_value_sums_across_nodes(self):
        reg = MetricsRegistry()
        reg.counter("bytes", 0).inc(10)
        reg.counter("bytes", 1).inc(5)
        assert reg.value("bytes") == 15
        assert reg.counter_values("bytes") == {0: 10, 1: 5}
        assert reg.value("missing") == 0.0

    def test_names(self):
        reg = MetricsRegistry()
        reg.counter("c")
        reg.gauge("g")
        reg.histogram("h")
        assert reg.names() == ["c", "g", "h"]

    def test_snapshot_and_render(self):
        reg = MetricsRegistry()
        reg.counter("c", 0).inc(2)
        reg.gauge("g", 1).set(3)
        reg.histogram("h").observe(4.0)
        rows = reg.snapshot()
        assert [r["type"] for r in rows] == ["counter", "gauge", "histogram"]
        text = reg.render_text()
        assert "c{node0} 2" in text
        assert "g{node1} 3 (max 3)" in text
        assert "h{cluster}" in text

    def test_to_csv(self, tmp_path):
        import csv

        reg = MetricsRegistry()
        reg.counter("c", 0).inc(2)
        reg.gauge("g").set(1)
        path = str(tmp_path / "m" / "metrics.csv")
        reg.to_csv(path)
        rows = list(csv.reader(open(path)))
        assert rows[0] == ["type", "name", "node", "value", "extra"]
        assert rows[1] == ["counter", "c", "0", "2.0", ""]
        assert rows[2] == ["gauge", "g", "", "1", "max=1"]


class TestPercentiles:
    def test_interpolates_within_bucket(self):
        h = Histogram("lat", buckets=(10.0, 20.0))
        for _ in range(10):
            h.observe(5.0)  # all in the first bucket [0, 10]
        # rank p/100*10 observations, linearly spread over [0, 10]
        assert h.percentile(50) == pytest.approx(5.0)
        assert h.percentile(100) == pytest.approx(10.0)

    def test_crosses_buckets(self):
        h = Histogram("lat", buckets=(10.0, 20.0, 40.0))
        for _ in range(5):
            h.observe(5.0)
        for _ in range(5):
            h.observe(15.0)
        assert h.percentile(50) == pytest.approx(10.0)
        assert h.percentile(75) == pytest.approx(15.0)
        assert h.percentile(25) == pytest.approx(5.0)

    def test_overflow_clamps_to_last_bound(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        h.observe(100.0)
        assert h.percentile(99) == 2.0

    def test_empty_and_bounds(self):
        h = Histogram("lat", buckets=(1.0,))
        assert h.percentile(99) == 0.0
        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_monotone_in_p(self):
        h = Histogram("lat", buckets=DEFAULT_US_BUCKETS)
        for v in (0.5, 3.0, 8.0, 40.0, 900.0, 12000.0):
            h.observe(v)
        ps = [h.percentile(p) for p in (0, 25, 50, 75, 95, 99, 100)]
        assert ps == sorted(ps)

    def test_snapshot_and_render_carry_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for _ in range(100):
            h.observe(4.0)
        row = [r for r in reg.snapshot() if r["type"] == "histogram"][0]
        assert row["p50"] == pytest.approx(h.percentile(50))
        assert row["p95"] == pytest.approx(h.percentile(95))
        assert row["p99"] == pytest.approx(h.percentile(99))
        text = reg.render_text()
        assert "p50=" in text and "p95=" in text and "p99=" in text

    def test_csv_extra_carries_percentiles(self, tmp_path):
        import csv

        reg = MetricsRegistry()
        reg.histogram("h").observe(4.0)
        path = str(tmp_path / "metrics.csv")
        reg.to_csv(path)
        rows = list(csv.reader(open(path)))
        extra = rows[1][4]
        assert "count=1" in extra
        assert "p50=" in extra and "p95=" in extra and "p99=" in extra
