"""Acceptance criterion: src/repro/obs never consults the wall clock.

All observability values must be event counts or simulated microseconds;
``time.time`` / ``perf_counter`` anywhere in the package would leak host
timing into deterministic results.
"""

import pathlib
import re

import repro.obs

OBS_DIR = pathlib.Path(repro.obs.__file__).parent

FORBIDDEN = re.compile(r"time\.time|perf_counter|monotonic\(|datetime\.now")


def test_obs_package_has_no_wallclock_calls():
    offenders = []
    for path in sorted(OBS_DIR.glob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if FORBIDDEN.search(line):
                offenders.append(f"{path.name}:{lineno}: {line.strip()}")
    assert not offenders, "wall-clock use in repro.obs:\n" + "\n".join(offenders)
