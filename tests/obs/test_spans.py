"""Span/interval query helpers (repro.obs.spans)."""

from repro.obs.spans import (
    category_intervals,
    merge_intervals,
    overlap_us,
    span_tree,
)
from repro.simulator import Tracer


class TestMergeIntervals:
    def test_empty(self):
        assert merge_intervals([]) == []

    def test_disjoint_sorted(self):
        assert merge_intervals([(5, 6), (0, 1)]) == [(0, 1), (5, 6)]

    def test_overlapping_and_touching(self):
        assert merge_intervals([(0, 2), (1, 4), (4, 5), (7, 8)]) == [(0, 5), (7, 8)]

    def test_contained(self):
        assert merge_intervals([(0, 10), (2, 3)]) == [(0, 10)]


class TestOverlap:
    def make_tracer(self):
        tr = Tracer(enabled=True)
        tr.record(0, 10, 0, "pack")
        tr.record(5, 15, 0, "wire")
        tr.record(12, 14, 1, "unpack")
        return tr

    def test_same_node_overlap(self):
        tr = self.make_tracer()
        assert overlap_us(tr, ("pack", 0), ("wire", 0)) == 5.0

    def test_cross_node_overlap(self):
        tr = self.make_tracer()
        assert overlap_us(tr, ("unpack", 1), ("wire", 0)) == 2.0

    def test_node_none_pools_all(self):
        tr = self.make_tracer()
        tr.record(13, 20, 1, "pack")
        assert overlap_us(tr, ("pack", None), ("wire", 0)) == 7.0

    def test_merging_prevents_double_count(self):
        tr = Tracer(enabled=True)
        # two overlapping pack intervals against one wire interval: the
        # intersection must count the union, not each interval separately
        tr.record(0, 10, 0, "pack")
        tr.record(0, 10, 0, "pack")
        tr.record(0, 10, 0, "wire")
        assert overlap_us(tr, ("pack", 0), ("wire", 0)) == 10.0

    def test_category_intervals_merged(self):
        tr = Tracer(enabled=True)
        tr.record(0, 3, 0, "cpu")
        tr.record(2, 5, 0, "cpu")
        assert category_intervals(tr, "cpu", 0) == [(0, 5)]


class TestSpanTree:
    def test_tree_structure(self):
        tr = Tracer(enabled=True)
        op = tr.begin(0.0, 0, "scheme:bc-spup")
        tr.record(1.0, 2.0, 0, "pack")
        tr.record(2.0, 3.0, 0, "wire")
        op.finish(3.0)
        tr.record(4.0, 5.0, 0, "reg")  # root-level record
        tree = span_tree(tr)
        scheme_rec = next(r for r in tr.records if r.category == "scheme:bc-spup")
        assert {r.category for r in tree[scheme_rec.span_id]} == {"pack", "wire"}
        assert {r.category for r in tree[0]} == {"scheme:bc-spup", "reg"}
