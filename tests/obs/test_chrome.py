"""Chrome trace-event exporter tests."""

import json

from repro.obs.chrome import chrome_trace_events, export_chrome_trace
from repro.simulator import Tracer


def make_tracer():
    tr = Tracer(enabled=True)
    tr.record(0.0, 5.0, 0, "pack")
    tr.record(2.0, 9.0, 0, "wire")
    tr.record(6.0, 8.0, 1, "unpack", "seg0", meta={"seg": 0})
    return tr


class TestChromeExport:
    def test_roundtrips_through_json(self):
        text = export_chrome_trace(make_tracer())
        doc = json.loads(text)
        assert "traceEvents" in doc
        assert doc["displayTimeUnit"] == "ms"

    def test_one_pid_per_node(self):
        events = chrome_trace_events(make_tracer())
        x_events = [e for e in events if e["ph"] == "X"]
        assert {e["pid"] for e in x_events} == {0, 1}
        proc_meta = [
            e for e in events if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert {e["pid"] for e in proc_meta} == {0, 1}
        assert {e["args"]["name"] for e in proc_meta} == {"node0", "node1"}

    def test_one_lane_per_category(self):
        events = chrome_trace_events(make_tracer())
        lanes = {
            (e["pid"], e["args"]["name"]): e["tid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        # node 0 has pack + wire on distinct lanes, node 1 has unpack
        assert lanes[(0, "pack")] != lanes[(0, "wire")]
        assert (1, "unpack") in lanes
        for e in events:
            if e["ph"] == "X":
                assert e["tid"] == lanes[(e["pid"], e["cat"])]

    def test_complete_events_carry_span_ids(self):
        events = chrome_trace_events(make_tracer())
        x_events = [e for e in events if e["ph"] == "X"]
        for e in x_events:
            assert "span_id" in e["args"]
            assert "parent_id" in e["args"]
        unpack = next(e for e in x_events if e["cat"] == "unpack")
        assert unpack["ts"] == 6.0
        assert unpack["dur"] == 2.0
        assert unpack["name"] == "seg0"
        assert unpack["args"]["meta"] == str({"seg": 0})

    def test_writes_file(self, tmp_path):
        path = str(tmp_path / "out" / "trace.json")
        text = export_chrome_trace(make_tracer(), path)
        assert json.loads(open(path).read()) == json.loads(text)

    def test_empty_tracer(self):
        doc = json.loads(export_chrome_trace(Tracer(enabled=True)))
        assert doc["traceEvents"] == []


class TestCounterTracks:
    def _series(self):
        return {
            ("sq.depth", 0): [(0.0, 1.0), (2.5, 3.0), (4.0, 0.0)],
            ("cpu.queue", None): [(1.0, 2.0)],
        }

    def test_counter_events_shape(self):
        from repro.obs.chrome import counter_track_events

        events = counter_track_events(self._series())
        assert all(e["ph"] == "C" for e in events)
        depth = [e for e in events if e["name"] == "sq.depth"]
        assert [(e["ts"], e["args"]["value"]) for e in depth] == [
            (0.0, 1.0), (2.5, 3.0), (4.0, 0.0),
        ]
        assert all(e["pid"] == 0 for e in depth)
        # cluster-wide series render under the synthetic pid -1
        assert [e["pid"] for e in events if e["name"] == "cpu.queue"] == [-1]

    def test_export_appends_counters(self):
        from repro.obs.chrome import counter_track_events

        counters = counter_track_events(self._series())
        text = export_chrome_trace(make_tracer(), counters=counters)
        events = json.loads(text)["traceEvents"]
        assert sum(1 for e in events if e["ph"] == "C") == len(counters)
        assert any(e["ph"] == "X" for e in events)

    def test_export_without_counters_unchanged(self):
        assert export_chrome_trace(make_tracer()) == export_chrome_trace(
            make_tracer(), counters=None
        )
