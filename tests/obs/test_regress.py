"""Regression explainer: category attribution diffs vs the ledger.

Includes the end-to-end acceptance test: an injected cost-model slowdown
(halving copy bandwidth) makes the bench gate fail AND the explainer
names ``copy`` as the moved category with a magnitude within 20% of the
analytically predicted delta.
"""

import re

import pytest

from repro.obs import regress
from repro.obs.profile import CATEGORIES


class TestParseMetricKey:
    def test_sweep_cell_key(self):
        assert regress.parse_metric_key("fig08/bc-spup/cols=64") == (
            "fig08",
            "bc-spup",
            64,
        )

    def test_non_cell_keys_return_none(self):
        for key in (
            "engine/post_poll/events_per_sec",
            "selftest/fig08/cells_per_sec",
            "fig08/bc-spup",
            "fig08/bc-spup/cols=x",
        ):
            assert regress.parse_metric_key(key) is None


class TestCellAttribution:
    def test_categories_present_and_copy_dominates(self):
        attr = regress.cell_attribution("fig08", "bc-spup", 64)
        assert attr["total_us"] > 0
        for cat in CATEGORIES:
            assert cat in attr
        # a 32 KB pack-based transfer is copy-dominated on this model
        assert attr["copy"] == max(attr[cat] for cat in CATEGORIES)

    def test_collect_skips_unparseable_keys(self):
        out = regress.collect_attributions(
            ["fig08/bc-spup/cols=64", "engine/post_poll/events_per_sec"]
        )
        assert list(out) == ["fig08/bc-spup/cols=64"]


class TestExplainRegressions:
    def test_non_cell_key_reported_unexplainable(self):
        (exp,) = regress.explain_regressions(
            ["engine/post_poll/events_per_sec"], {}, None
        )
        assert exp.reason is not None and "no critical path" in exp.reason
        assert exp.moved is None
        text = regress.format_regressions([exp])
        assert "unexplained" in text

    def test_no_last_good_record(self):
        (exp,) = regress.explain_regressions(
            ["fig08/bc-spup/cols=64"],
            {"fig08/bc-spup/cols=64": {"total_us": 10.0}},
            None,
        )
        assert exp.reason is not None and "last-good" in exp.reason

    def test_diff_names_biggest_mover(self):
        key = "fig08/bc-spup/cols=64"
        before = {"total_us": 100.0, **{c: 0.0 for c in CATEGORIES}}
        before.update(copy=40.0, wire=30.0)
        after = {"total_us": 130.0, **{c: 0.0 for c in CATEGORIES}}
        after.update(copy=68.0, wire=32.0)
        (exp,) = regress.explain_regressions(
            [key], {key: after}, {"attribution": {key: before}}
        )
        assert exp.reason is None
        assert exp.moved.category == "copy"
        assert exp.moved.delta_us == pytest.approx(28.0)
        assert exp.moved.pct == pytest.approx(70.0)
        text = regress.format_regressions(
            [exp], {"sha": "a" * 40, "version": "1.0"}
        )
        assert "moved: copy +28.00 us (+70.0%)" in text
        assert "critical path 100.00 -> 130.00 us (+30.00 us)" in text


class TestGateAcceptance:
    """Issue acceptance: injected slowdown -> gate fails, explainer says
    which category moved and by how much."""

    @pytest.fixture
    def gate_env(self, tmp_path, monkeypatch):
        from repro.bench import gate

        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_GIT_SHA", "c" * 40)
        monkeypatch.delenv("REPRO_BENCH_JOBS", raising=False)
        # one cell keeps the test fast; the machinery is identical
        monkeypatch.setattr(gate, "SCHEMES", ("bc-spup",))
        monkeypatch.setattr(gate, "COLUMNS", (64,))
        return gate

    def test_injected_copy_slowdown_is_named_with_magnitude(
        self, gate_env, tmp_path, monkeypatch, capsys
    ):
        from repro.ib.costmodel import CostModel

        gate = gate_env
        baseline = tmp_path / "baseline.json"
        explain = tmp_path / "explain.md"

        rc = gate.main(
            ["--write-baseline", "--baseline", str(baseline), "--no-engine"]
        )
        assert rc == 0
        capsys.readouterr()

        # inject the slowdown: halve copy bandwidth in the cost model
        fast = CostModel.mellanox_2003()
        slow = fast.with_overrides(copy_bandwidth=fast.copy_bandwidth / 2)
        monkeypatch.setattr(
            CostModel, "mellanox_2003", classmethod(lambda cls: slow)
        )

        rc = gate.main(
            [
                "--baseline", str(baseline),
                "--no-engine",
                "--explain-out", str(explain),
            ]
        )
        assert rc == 1  # the gate fails...
        err = capsys.readouterr().err
        assert "benchmark regressions" in err
        assert "moved: copy" in err  # ...and the explainer names copy

        body = explain.read_text()
        assert body.startswith("# benchmark regressions")
        m = re.search(r"moved: copy \+([0-9.]+) us", body)
        assert m, body
        reported_delta = float(m.group(1))

        # independent magnitude check: halving copy bandwidth adds
        # nbytes/bw per copy pass; pack + unpack both sit on the
        # critical path of this 32 KB bc-spup transfer
        nbytes = 64 * 512
        predicted = 2 * nbytes / fast.copy_bandwidth
        assert abs(reported_delta - predicted) / predicted < 0.20

    def test_passing_gate_writes_clean_explanation(
        self, gate_env, tmp_path, capsys
    ):
        gate = gate_env
        baseline = tmp_path / "baseline.json"
        explain = tmp_path / "explain.md"

        assert gate.main(
            ["--write-baseline", "--baseline", str(baseline), "--no-engine"]
        ) == 0
        assert gate.main(
            [
                "--baseline", str(baseline),
                "--no-engine",
                "--explain-out", str(explain),
            ]
        ) == 0
        assert "benchmark gate passed" in explain.read_text()

    def test_gate_ledger_trajectory_feeds_trends(
        self, gate_env, tmp_path, capsys
    ):
        from repro.obs import ledger, trends

        gate = gate_env
        baseline = tmp_path / "baseline.json"
        assert gate.main(
            ["--write-baseline", "--baseline", str(baseline), "--no-engine"]
        ) == 0
        assert gate.main(["--baseline", str(baseline), "--no-engine"]) == 0

        records = ledger.read_ledger(kind="gate")
        assert [r["status"] for r in records] == ["baseline", "pass"]
        assert all("attribution" in r for r in records)
        # two records are enough for a rendered trajectory
        out = []
        assert trends.run_trends(print_fn=out.append) == 0
        text = "\n".join(out)
        assert "2 ledger record(s)" in text
        assert "fig08/bc-spup/cols=64" in text


class TestEngineKeyHostExplanation:
    """Regressed engine/* throughput keys are explained by diffing the
    host-time profile instead of the (nonexistent) simulated path."""

    def host(self, **overrides):
        from repro.obs.hostprof import HOST_CATEGORIES

        nspe = {cat: 100.0 for cat in HOST_CATEGORIES}
        nspe.update(overrides)
        nspe["total"] = sum(nspe.values())
        return {"ns_per_event": nspe, "closure": 1.0, "overhead": 0.06}

    def test_names_moved_host_category(self):
        key = "engine/bandwidth/events_per_sec"
        before = {"bandwidth": self.host()}
        after = {"bandwidth": self.host(**{"pack-unpack": 2100.0})}
        (exp,) = regress.explain_regressions(
            [key], {},
            {"attribution": {}, "host_profile": before},
            host_now=after,
        )
        assert exp.reason is None
        assert exp.unit == "ns/ev"
        assert exp.moved.category == "pack-unpack"
        assert exp.moved.delta_us == pytest.approx(2000.0)
        text = regress.format_regressions([exp])
        assert "host time" in text
        assert "moved: pack-unpack +2000.00 ns/ev" in text

    def test_without_current_host_data_stays_unexplained(self):
        (exp,) = regress.explain_regressions(
            ["engine/bandwidth/events_per_sec"], {},
            {"attribution": {}, "host_profile": {"bandwidth": self.host()}},
        )
        assert exp.reason is not None and "no critical path" in exp.reason

    def test_without_last_good_host_profile(self):
        (exp,) = regress.explain_regressions(
            ["engine/bandwidth/events_per_sec"], {},
            {"attribution": {}},
            host_now={"bandwidth": self.host()},
        )
        assert exp.reason is not None
        assert "no last-good host profile" in exp.reason

    def test_engineered_pack_slowdown_is_named(self, monkeypatch):
        """Issue acceptance: slow the real pack/unpack byte movement and
        the explainer names ``pack-unpack`` as the moved host category."""
        import time as _time

        from repro.bench.workloads import column_vector
        from repro.ib.memory import NodeMemory
        from repro.obs.hostprof import hostprof_transfer

        dt = column_vector(64).datatype

        def profile():
            hp, _cluster = hostprof_transfer(
                "bc-spup", dt, iters=3, duty=(1, 0)
            )
            return {
                "bandwidth": {
                    "ns_per_event": hp.ns_per_event(),
                    "closure": hp.closure(),
                    "overhead": 0.0,
                }
            }

        before = profile()

        real_gather = NodeMemory.gather_blocks

        def slow_gather(self, *args, **kwargs):
            # 500 us busy-wait per pack pass: large enough that the
            # injected pack-unpack delta dwarfs scheduler noise in the
            # other categories even on a loaded shared host
            t0 = _time.perf_counter_ns()
            while _time.perf_counter_ns() - t0 < 500_000:
                pass
            return real_gather(self, *args, **kwargs)

        monkeypatch.setattr(NodeMemory, "gather_blocks", slow_gather)
        after = profile()

        key = "engine/bandwidth/events_per_sec"
        (exp,) = regress.explain_regressions(
            [key], {},
            {"attribution": {}, "host_profile": before},
            host_now=after,
        )
        assert exp.reason is None
        assert exp.moved.category == "pack-unpack", (
            regress.format_regressions([exp])
        )
        assert exp.moved.delta_us > 0
