"""Host profiling measures the host, never the simulation.

With ``host_profile=False`` (the default) a cluster must carry none of
the profiler plumbing — plain tracer, plain metrics registry, no
``sim.host_profiler`` — and a profiled run must produce byte-identical
simulated results, metrics, and traces to an unprofiled one.
"""

from dataclasses import asdict

from repro.ib.costmodel import MB
from repro.mpi.world import Cluster


def column_dt(cols=64):
    from repro.bench.workloads import column_vector

    return column_vector(cols).datatype


def transfer(host_profile, trace=False):
    dt = column_dt()
    cluster = Cluster(
        2, scheme="bc-spup", memory_per_rank=512 * MB, trace=trace,
        host_profile=host_profile,
    )
    span = dt.flatten(1).span + abs(dt.lb) + 64

    def rank0(mpi):
        buf = mpi.alloc(span)
        for i in range(3):
            yield from mpi.send(buf, dt, 1, dest=1, tag=i)
        return mpi.now

    def rank1(mpi):
        buf = mpi.alloc(span)
        for i in range(3):
            yield from mpi.recv(buf, dt, 1, source=0, tag=i)
        return mpi.now

    result = cluster.run([rank0, rank1])
    return cluster, result


class TestOffMeansOff:
    def test_no_profiler_plumbing_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_HOST_PROFILE", raising=False)
        from repro.obs.metrics import MetricsRegistry
        from repro.simulator.trace import Tracer

        cluster = Cluster(2, memory_per_rank=64 * MB)
        assert cluster.host_profiler is None
        assert cluster.sim.host_profiler is None
        assert type(cluster.metrics) is MetricsRegistry
        assert type(cluster.tracer) is Tracer

    def test_explicit_false_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOST_PROFILE", "1")
        cluster = Cluster(2, memory_per_rank=64 * MB, host_profile=False)
        assert cluster.host_profiler is None

    def test_environment_activates(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOST_PROFILE", "yes")
        cluster = Cluster(2, memory_per_rank=64 * MB)
        assert cluster.host_profiler is not None
        assert cluster.sim.host_profiler is cluster.host_profiler

    def test_falsy_environment_stays_off(self, monkeypatch):
        for value in ("", "0", "no", "off", "false"):
            monkeypatch.setenv("REPRO_HOST_PROFILE", value)
            assert Cluster(1, memory_per_rank=64 * MB).host_profiler is None

    def test_active_global_cleared_after_run(self):
        from repro.obs import hostprof

        _cluster, _result = transfer(host_profile=True)
        assert hostprof.ACTIVE is None


class TestByteIdentity:
    def test_simulated_results_identical(self):
        _c_off, r_off = transfer(host_profile=False)
        _c_on, r_on = transfer(host_profile=True)
        assert r_on.time_us == r_off.time_us
        assert r_on.values == r_off.values

    def test_metrics_identical(self):
        c_off, _ = transfer(host_profile=False)
        c_on, _ = transfer(host_profile=True)
        assert c_on.metrics.snapshot() == c_off.metrics.snapshot()

    def test_traces_identical(self):
        c_off, _ = transfer(host_profile=False, trace=True)
        c_on, _ = transfer(host_profile=True, trace=True)
        recs_off = [asdict(r) for r in c_off.tracer.records]
        recs_on = [asdict(r) for r in c_on.tracer.records]
        assert recs_on == recs_off

    def test_stats_identical(self):
        c_off, _ = transfer(host_profile=False)
        c_on, _ = transfer(host_profile=True)
        assert c_on.stats() == c_off.stats()

    def test_exact_duty_also_identical(self):
        # instrumenting every dispatch must not change simulation either
        _c_off, r_off = transfer(host_profile=False)
        dt = column_dt()
        from repro.obs.hostprof import hostprof_transfer

        hp, cluster = hostprof_transfer("bc-spup", dt, iters=3, duty=(1, 0))
        # same program shape as transfer(): 3 sends of the same datatype
        assert cluster.sim.now == r_off.time_us
        assert hp.total_events == cluster.sim.events_processed
