"""Integration: every layer records into the cluster-wide registry/tracer."""

from repro.datatypes import INT, vector
from repro.ib.costmodel import MB
from repro.mpi.world import Cluster


def run_pingpong(**cluster_kwargs):
    dt = vector(64, 16, 128, INT)  # 4 KB noncontiguous

    def rank0(mpi):
        buf = mpi.alloc(dt.extent)
        yield from mpi.send(buf, dt, 1, dest=1, tag=0)
        yield from mpi.send(buf, dt, 1, dest=1, tag=1)

    def rank1(mpi):
        buf = mpi.alloc(dt.extent)
        yield from mpi.recv(buf, dt, 1, source=0, tag=0)
        yield from mpi.recv(buf, dt, 1, source=0, tag=1)

    cluster = Cluster(2, memory_per_rank=64 * MB, **cluster_kwargs)
    cluster.run([rank0, rank1])
    return cluster


def run_rndv(scheme="bc-spup", **cluster_kwargs):
    dt = vector(128, 128, 4096, INT)  # 64 KB: rendezvous

    def rank0(mpi):
        buf = mpi.alloc(dt.extent)
        yield from mpi.send(buf, dt, 1, dest=1, tag=0)

    def rank1(mpi):
        buf = mpi.alloc(dt.extent)
        yield from mpi.recv(buf, dt, 1, source=0, tag=0)

    cluster = Cluster(
        2, scheme=scheme, memory_per_rank=512 * MB, **cluster_kwargs
    )
    cluster.run([rank0, rank1])
    return cluster


class TestIBMetrics:
    def test_descriptors_and_bytes(self):
        cluster = run_rndv()
        m = cluster.metrics
        assert m.value("ib.descriptors") > 0
        assert m.value("ib.bytes_injected") >= 64 * 1024
        assert m.value("ib.sends_posted") > 0
        assert m.value("ib.recvs_posted") > 0
        assert m.value("ib.cq_completions") > 0
        # metrics agree with the HCA's own counters
        hca_desc = sum(c.node.hca.descriptors_processed for c in cluster.contexts)
        assert m.value("ib.descriptors") == hca_desc

    def test_send_queue_depth_gauge(self):
        cluster = run_rndv()
        depths = [
            cluster.metrics.gauge("ib.sq_depth", c.node.node_id).max_value
            for c in cluster.contexts
        ]
        assert max(depths) >= 1

    def test_list_post_counter(self):
        cluster = run_rndv(scheme="multi-w")
        assert cluster.metrics.value("ib.list_posts") > 0


class TestMPIMetrics:
    def test_eager_vs_rndv_counts(self):
        cluster = run_pingpong()
        m = cluster.metrics
        assert m.counter("mpi.eager_sends", 0).value == 2
        assert m.counter("mpi.rndv_sends", 0).value == 0
        cluster = run_rndv()
        m = cluster.metrics
        assert m.counter("mpi.rndv_sends", 0).value == 1
        assert m.counter("mpi.eager_sends", 0).value == 0

    def test_copy_bytes(self):
        cluster = run_rndv()
        m = cluster.metrics
        # sender packs 64 KB, receiver unpacks 64 KB
        assert m.counter("scheme.copy_bytes", 0).value == 64 * 1024
        assert m.counter("scheme.copy_bytes", 1).value == 64 * 1024
        assert m.value("scheme.copy_blocks") > 0

    def test_unexpected_depth_gauge_exists(self):
        cluster = run_pingpong()
        # the gauge is registered for both ranks (value depends on timing)
        assert "mpi.unexpected_depth" in cluster.metrics.names()


class TestSchemeMetrics:
    def test_segments_counted(self):
        cluster = run_rndv()
        m = cluster.metrics
        assert m.counter("scheme.segments", 0).value >= 1  # sender plan
        assert m.counter("scheme.segments", 1).value >= 1  # receiver plan

    def test_multiw_pieces(self):
        cluster = run_rndv(scheme="multi-w")
        assert cluster.metrics.counter("scheme.rdma_pieces", 0).value == 128

    def test_registration_counters(self):
        cluster = run_rndv(scheme="multi-w")
        m = cluster.metrics
        assert m.value("reg.registrations") > 0
        assert m.value("reg.registered_bytes") > 0


class TestSchemeSpans:
    def test_scheme_span_encloses_children(self):
        cluster = run_rndv(trace=True)
        tracer = cluster.tracer
        sender_spans = [
            r for r in tracer.records
            if r.category == "scheme:bc-spup" and r.node == 0
        ]
        assert len(sender_spans) == 1
        span = sender_spans[0]
        kids = tracer.children(span.span_id)
        assert {r.category for r in kids} >= {"pack"}
        for kid in kids:
            assert span.start <= kid.start and kid.end <= span.end
        recv_spans = [
            r for r in tracer.records
            if r.category == "scheme:bc-spup" and r.node == 1
        ]
        assert len(recv_spans) == 1
        recv_kids = tracer.children(recv_spans[0].span_id)
        assert {r.category for r in recv_kids} >= {"unpack"}
