"""Critical-path profiler: walker mechanics, attribution ground truth,
inertness, and the cost-model explainer.

The attribution ground-truth tests pin the paper's qualitative claims:
BC-SPUP's critical path is copy-dominated (its defining trade-off —
Section 4), Multi-W's is wire-dominated at large sizes (zero copy pays
off — Section 5.3), and for *every* scheme the per-category attribution
sums to the measured end-to-end latency within 0.1% (exact tiling by
construction; the tolerance absorbs float rounding only).
"""

import pytest

from repro.obs.explain import explain, predict
from repro.obs.profile import (
    CATEGORIES,
    Profiler,
    categorize,
    critical_path,
    format_bottlenecks,
    profile_transfer,
)
from repro.obs.metrics import MetricsRegistry
from repro.simulator import Resource, Simulator, Store

ALL_SCHEMES = ("generic", "bc-spup", "rwg-up", "p-rrs", "multi-w", "hybrid",
               "adaptive")


def column_workload(cols):
    from repro.bench.workloads import column_vector

    return column_vector(cols)


class TestCategorize:
    def test_known_tags(self):
        assert categorize("pack") == "copy"
        assert categorize("unpack") == "copy"
        assert categorize("wire") == "wire"
        assert categorize("post_send") == "descriptor"
        assert categorize("dtproc") == "descriptor"
        assert categorize("register") == "registration"
        assert categorize("malloc") == "registration"
        assert categorize("ctrl") == "protocol-wait"
        assert categorize("cqe") == "protocol-wait"

    def test_unknown_and_none_fall_to_protocol_wait(self):
        assert categorize(None) == "protocol-wait"
        assert categorize("frobnicate") == "protocol-wait"

    def test_app_copy_heuristics(self):
        assert categorize("fio-pack") == "copy"
        assert categorize("transpose-local") == "copy"
        assert categorize("reduce-sum") == "copy"


class TestWalker:
    """Walk hand-built event chains through a bare simulator."""

    def _sim(self):
        sim = Simulator()
        sim.profiler = Profiler(MetricsRegistry())
        return sim

    def test_simple_chain_tiles_interval(self):
        sim = self._sim()

        def prog(sim):
            yield sim.timeout(10.0, tag="pack")
            yield sim.timeout(5.0, tag="wire")
            yield sim.timeout(2.0, tag="cqe")

        proc = sim.process(prog(sim))
        sim.run()
        attr = critical_path(proc)
        assert attr.total_us == pytest.approx(17.0)
        assert attr.categories["copy"] == pytest.approx(10.0)
        assert attr.categories["wire"] == pytest.approx(5.0)
        assert attr.categories["protocol-wait"] == pytest.approx(2.0)
        assert attr.unattributed_us == pytest.approx(0.0)
        assert attr.closure_error() < 1e-9

    def test_resource_wait_relabels(self):
        sim = self._sim()
        res = Resource(sim, capacity=1, name="cpu", node=0)

        def holder(sim, res):
            grant = yield res.acquire()
            yield sim.timeout(8.0, tag="pack")
            res.release(grant)

        def waiter(sim, res):
            grant = yield res.acquire()
            yield sim.timeout(1.0, tag="wire")
            res.release(grant)

        sim.process(holder(sim, res))
        proc = sim.process(waiter(sim, res))
        sim.run()
        attr = critical_path(proc)
        # the waiter queued from t=0 to t=8: contention, not the holder's
        # pack work, is what delayed it
        assert attr.categories["resource-wait"] == pytest.approx(8.0)
        assert attr.categories["wire"] == pytest.approx(1.0)
        assert attr.total_us == pytest.approx(9.0)

    def test_store_wait_follows_producer(self):
        sim = self._sim()
        store = Store(sim, name="mailbox", node=0)

        def producer(sim, store):
            yield sim.timeout(6.0, tag="pack")
            store.put("item")

        def consumer(sim, store):
            item = yield store.get()
            assert item == "item"
            yield sim.timeout(1.0, tag="unpack")

        sim.process(producer(sim, store))
        proc = sim.process(consumer(sim, store))
        sim.run()
        attr = critical_path(proc)
        # the consumer's wait is a communication dependency: the time
        # belongs to the producer's pack, not to a wait bucket
        assert attr.categories["copy"] == pytest.approx(7.0)
        assert attr.total_us == pytest.approx(7.0)

    def test_split_tag_partitions_one_timeout(self):
        sim = self._sim()

        def prog(sim):
            yield sim.timeout(
                10.0, tag=("split", (("descriptor", 1.5), ("wire", None)))
            )

        proc = sim.process(prog(sim))
        sim.run()
        attr = critical_path(proc)
        assert attr.categories["descriptor"] == pytest.approx(1.5)
        assert attr.categories["wire"] == pytest.approx(8.5)

    def test_requires_provenance(self):
        sim = Simulator()  # no profiler attached

        def prog(sim):
            yield sim.timeout(1.0)

        proc = sim.process(prog(sim))
        sim.run()
        with pytest.raises(ValueError, match="profile=True"):
            critical_path(proc)


class TestProfilerSampling:
    def test_resource_samples_and_wait_histogram(self):
        metrics = MetricsRegistry()
        sim = Simulator()
        sim.profiler = prof = Profiler(metrics)
        res = Resource(sim, capacity=1, name="cpu0", node=0)

        def holder(sim, res):
            grant = yield res.acquire()
            yield sim.timeout(4.0)
            res.release(grant)

        def waiter(sim, res):
            grant = yield res.acquire()
            res.release(grant)

        sim.process(holder(sim, res))
        sim.process(waiter(sim, res))
        sim.run()
        assert ("cpu0.in_use", 0) in prof.series
        assert ("cpu0.queue", 0) in prof.series
        hist = metrics.histogram("profile.resource.wait_us", 0)
        assert hist.count == 1
        assert hist.total == pytest.approx(4.0)
        assert metrics.gauge("profile.queue.cpu0", 0).max_value == 1.0

    def test_store_depth_series(self):
        metrics = MetricsRegistry()
        sim = Simulator()
        sim.profiler = prof = Profiler(metrics)
        store = Store(sim, name="sq", node=1)
        store.put("a")
        store.put("b")
        assert prof.series[("sq.depth", 1)][-1] == (0.0, 2.0)
        assert metrics.gauge("profile.depth.sq", 1).max_value == 2.0

    def test_same_time_samples_collapse(self):
        prof = Profiler(MetricsRegistry())
        prof.sample("x", 0, 1.0, 1.0)
        prof.sample("x", 0, 1.0, 3.0)
        prof.sample("x", 0, 2.0, 2.0)
        assert prof.series[("x", 0)] == [(1.0, 3.0), (2.0, 2.0)]


class TestAttributionGroundTruth:
    """The paper's qualitative claims, asserted on the causal DAG."""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("cols", [32, 128])
    def test_attribution_sums_to_latency(self, scheme, cols):
        wl = column_workload(cols)
        attr, cluster = profile_transfer(scheme, wl.datatype)
        assert attr.unattributed_us <= 1e-6
        total = attr.attributed_us + attr.unattributed_us
        assert total == pytest.approx(attr.total_us, rel=1e-3)
        # the completion time is a real cluster timestamp
        assert 0 < attr.total_us <= cluster.sim.now

    def test_bcspup_copy_dominated(self):
        # fig08-style workload: BC-SPUP pays pack+unpack on every byte
        attr, _ = profile_transfer("bc-spup", column_workload(128).datatype)
        assert attr.dominant() == "copy"
        assert attr.share("copy") > 0.5

    def test_multiw_wire_dominated_at_large_sizes(self):
        # at 1 MB the zero-copy scheme's critical path is the wire itself
        attr, _ = profile_transfer("multi-w", column_workload(2048).datatype)
        assert attr.dominant() == "wire"
        assert attr.categories["copy"] == 0.0

    def test_generic_pays_copies_and_serialization(self):
        attr, _ = profile_transfer("generic", column_workload(128).datatype)
        bc, _ = profile_transfer("bc-spup", column_workload(128).datatype)
        # same bytes, but generic cannot hide its copies behind the wire
        assert attr.categories["copy"] >= bc.categories["copy"]
        assert attr.total_us > bc.total_us

    def test_steps_are_contiguous_and_ordered(self):
        attr, _ = profile_transfer("bc-spup", column_workload(64).datatype)
        assert attr.steps, "critical path cannot be empty"
        for a, b in zip(attr.steps, attr.steps[1:]):
            assert a.end <= b.start + 1e-9
        assert attr.steps[-1].end == pytest.approx(attr.end_us)


class TestInertProfile:
    """profile=False must be byte-identical to a build without profiling
    (the repro.faults inertness pattern)."""

    def _run(self, profile):
        from repro.ib.costmodel import MB
        from repro.mpi.world import Cluster

        wl = column_workload(64)
        dt = wl.datatype
        cluster = Cluster(
            2, scheme="bc-spup", memory_per_rank=512 * MB, trace=True,
            profile=profile,
        )
        span = dt.flatten(1).span + abs(dt.lb) + 64

        def rank0(mpi):
            buf = mpi.alloc(span)
            yield from mpi.send(buf, dt, 1, dest=1, tag=0)
            return mpi.now

        def rank1(mpi):
            buf = mpi.alloc(span)
            yield from mpi.recv(buf, dt, 1, source=0, tag=0)
            return mpi.now

        result = cluster.run([rank0, rank1])
        trace = tuple(
            (r.start, r.end, r.node, r.category, r.detail)
            for r in cluster.tracer.records
        )
        return result, trace, cluster

    def test_profiled_run_identical_to_unprofiled(self):
        off, trace_off, cluster_off = self._run(False)
        on, trace_on, cluster_on = self._run(True)
        assert off.time_us == on.time_us
        assert off.values == on.values
        assert trace_off == trace_on

    def test_no_profile_instruments_when_off(self):
        _res, _trace, cluster = self._run(False)
        assert cluster.profiler is None
        assert cluster.sim.profiler is None
        profiled = [n for n in cluster.metrics.names() if n.startswith("profile.")]
        assert profiled == []

    def test_no_provenance_recorded_when_off(self):
        res, _trace, cluster = self._run(False)
        # spot-check: no event in a fresh sim records provenance
        ev = cluster.sim.event()
        ev.succeed(delay=1.0, tag="pack")
        assert ev._cause is None and ev._sched_at == -1.0

    def test_profile_instruments_exist_when_on(self):
        _res, _trace, cluster = self._run(True)
        profiled = [n for n in cluster.metrics.names() if n.startswith("profile.")]
        assert profiled


class TestExplainer:
    def test_deltas_cover_all_categories(self):
        wl = column_workload(128)
        attr, cluster = profile_transfer("bc-spup", wl.datatype)
        deltas = explain(
            "bc-spup", cluster.cm, wl.datatype.flatten(1), wl.datatype.size, attr
        )
        assert [d.category for d in deltas] == list(CATEGORIES)
        for d in deltas:
            assert d.predicted_us >= 0.0
            assert d.simulated_us >= 0.0
            assert d.divergence >= 0.0

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_every_scheme_predicts(self, scheme):
        from repro.ib.costmodel import CostModel

        wl = column_workload(128)
        pred = predict(scheme, CostModel.mellanox_2003(), wl.datatype.flatten(1),
                       wl.datatype.size)
        assert set(pred) == set(CATEGORIES)
        assert sum(pred.values()) > 0.0

    def test_wire_prediction_accurate_for_bcspup(self):
        # wire time is the closed form the simulation implements directly;
        # the explainer should agree to within the 10% flag threshold
        wl = column_workload(128)
        attr, cluster = profile_transfer("bc-spup", wl.datatype)
        deltas = explain(
            "bc-spup", cluster.cm, wl.datatype.flatten(1), wl.datatype.size, attr
        )
        by_cat = {d.category: d for d in deltas}
        assert not by_cat["wire"].flagged
        assert not by_cat["descriptor"].flagged

    def test_format_explanation_flags_divergence(self):
        from repro.obs.explain import CategoryDelta, format_explanation

        rows = [
            CategoryDelta("copy", predicted_us=10.0, simulated_us=100.0,
                          divergence=0.9),
            CategoryDelta("wire", predicted_us=1.0, simulated_us=1.0,
                          divergence=0.0),
        ]
        text = format_explanation(rows)
        lines = text.splitlines()
        copy_line = next(ln for ln in lines if ln.startswith("copy"))
        wire_line = next(ln for ln in lines if ln.startswith("wire"))
        assert copy_line.endswith("!")
        assert not wire_line.endswith("!")


class TestBottleneckTable:
    def test_ranked_and_totalled(self):
        attr, _ = profile_transfer("bc-spup", column_workload(64).datatype)
        text = format_bottlenecks(attr, title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert lines[-1].startswith("total")
        # first data row is the dominant category
        assert lines[3].split()[0] == attr.dominant()


class TestProfileCLI:
    def test_profile_subcommand(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        prefix = tmp_path / "trace"
        rc = main(
            ["profile", "fig09", "bc-spup", "--size", "16384",
             "--chrome-trace", str(prefix)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "critical path: bc-spup" in out
        assert "cost-model explanation" in out
        trace_file = tmp_path / "trace.bc-spup.16384.json"
        assert trace_file.exists()
        import json

        events = json.loads(trace_file.read_text())["traceEvents"]
        assert any(e["ph"] == "C" for e in events)
        assert any(e["ph"] == "X" for e in events)


class TestBackToBackTransfers:
    """Independent transfers must not chain through a stale dispatch cursor.

    Regression: ``Simulator._current_event`` used to survive past the end
    of a dispatch, so the root events of a transfer started from driver
    code *after* a previous ``run()`` inherited the previous transfer's
    last event as their ``_cause`` — and ``critical_path()`` walked one
    transfer's attribution into the other.
    """

    def _run_transfer(self, cluster, dt):
        holder = {}
        span = dt.flatten(1).span + abs(dt.lb) + 64

        def rank0(mpi):
            buf = mpi.alloc(span)
            yield from mpi.send(buf, dt, 1, dest=1, tag=0)

        def rank1(mpi):
            buf = mpi.alloc(span)
            req = yield from mpi.recv(buf, dt, 1, source=0, tag=0)
            holder["req"] = req

        cluster.run([rank0, rank1])
        return holder["req"]

    def test_second_transfer_path_stays_in_second_transfer(self):
        from repro.bench.workloads import column_vector
        from repro.ib.costmodel import MB
        from repro.mpi.world import Cluster

        dt = column_vector(64).datatype
        cluster = Cluster(2, scheme="bc-spup", memory_per_rank=512 * MB,
                          profile=True)
        self._run_transfer(cluster, dt)
        t_mid = cluster.sim.now
        req2 = self._run_transfer(cluster, dt)

        attr = critical_path(req2.done, t0=0.0)
        # with the stale cause, steps of transfer 2's path reached back
        # into transfer 1's events (start < t_mid); everything before
        # t_mid must instead be unattributed idle time
        assert attr.steps, "expected a non-empty critical path"
        assert all(step.start >= t_mid - 1e-9 for step in attr.steps)
        assert attr.unattributed_us >= t_mid - 1e-9

    def test_second_transfer_attribution_closes(self):
        from repro.bench.workloads import column_vector
        from repro.ib.costmodel import MB
        from repro.mpi.world import Cluster

        dt = column_vector(64).datatype
        cluster = Cluster(2, scheme="rwg-up", memory_per_rank=512 * MB,
                          profile=True)
        self._run_transfer(cluster, dt)
        t_mid = cluster.sim.now
        req2 = self._run_transfer(cluster, dt)
        attr = critical_path(req2.done, t0=t_mid)
        assert attr.closure_error() <= 1e-6 * max(attr.total_us, 1.0)
