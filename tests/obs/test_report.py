"""Report module + CLI tests, including the overlap regression check."""

import json

import pytest

from repro.obs.report import (
    DEFAULT_SCHEMES,
    SchemeBreakdown,
    format_table,
    measure_breakdown,
    run_report,
    workload_for,
)


class TestWorkloadFor:
    def test_fig09_column_count(self):
        wl = workload_for("fig09", 65536)
        assert wl.nbytes == 65536  # 128 columns of 512 bytes

    def test_small_size_floors_at_one_column(self):
        assert workload_for("fig09", 100).nbytes == 512

    def test_fig11_struct(self):
        wl = workload_for("fig11", 1024)
        assert wl.nbytes >= 1024

    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            workload_for("fig99", 1024)


class TestBreakdown:
    def test_bcspup_breakdown(self):
        wl = workload_for("fig09", 65536)
        b, cluster = measure_breakdown("bc-spup", wl.datatype)
        assert b.scheme == "bc-spup"
        assert b.nbytes == 65536
        assert b.copy_us > 0
        assert b.wire_us > 0
        assert b.overlap_us > 0  # the pipelining scheme must hide some copy
        assert 0 < b.overlap_pct <= 100
        assert b.descriptors > 0
        # the cluster is returned for export: tracer + metrics populated
        assert cluster.tracer.records
        assert cluster.metrics.value("ib.descriptors") == b.descriptors

    def test_multiw_zero_copy(self):
        wl = workload_for("fig09", 65536)
        b, _cluster = measure_breakdown("multi-w", wl.datatype)
        assert b.copy_us == 0.0  # zero-copy scheme: no pack/unpack
        assert b.reg_us > 0  # ... but registration on both sides

    def test_overlap_matches_legacy_sweep(self):
        """Regression: the span-API overlap equals the pre-refactor
        per-record sweep (tracer.overlap_time / raw interval walk) on the
        fig09 workload."""
        wl = workload_for("fig09", 65536)
        for scheme in ("bc-spup", "rwg-up", "generic"):
            b, cluster = measure_breakdown(scheme, wl.datatype)
            tracer = cluster.tracer
            legacy_pack = tracer.overlap_time("pack", "wire", node=0)
            legacy_unpack = _legacy_cross_overlap(
                tracer, "unpack", 1, "wire", 0
            )
            assert b.overlap_us == pytest.approx(legacy_pack + legacy_unpack)


def _legacy_cross_overlap(tracer, cat_a, node_a, cat_b, node_b) -> float:
    """The pre-refactor interval walk from bench/overlap.py."""
    a = sorted((r.start, r.end) for r in tracer.iter_category(cat_a, node_a))
    b = sorted((r.start, r.end) for r in tracer.iter_category(cat_b, node_b))
    i = j = 0
    total = 0.0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if lo < hi:
            total += hi - lo
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return total


class TestRunReport:
    def test_prints_table_with_required_columns(self):
        lines = []
        rows = run_report(
            workload="fig09",
            sizes=[4096],
            schemes=["generic", "bc-spup"],
            print_fn=lines.append,
        )
        assert len(rows) == 2
        text = "\n".join(lines)
        for col in ("copy_us", "wire_us", "overlap%", "reg_us", "descr"):
            assert col in text
        assert "generic" in text and "bc-spup" in text

    def test_exports(self, tmp_path):
        chrome = str(tmp_path / "trace")
        metrics = str(tmp_path / "metrics.csv")
        run_report(
            workload="fig09",
            sizes=[4096],
            schemes=["bc-spup"],
            chrome_out=chrome,
            metrics_out=metrics,
            print_fn=lambda _s: None,
        )
        doc = json.loads(open(f"{chrome}.bc-spup.4096.json").read())
        # one pid per simulated node (acceptance criterion)
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {0, 1}
        assert open(metrics).readline().startswith("type,name,node,value")

    def test_format_table_alignment(self):
        row = SchemeBreakdown("bc-spup", 1024, 10.0, 5.0, 4.0, 2.0, 1.0, 7)
        table = format_table([row])
        assert "bc-spup" in table
        assert "40.0%" in table  # 2.0 / 5.0 hidden


class TestCLI:
    def test_acceptance_invocation(self, capsys):
        from repro.obs.__main__ import main

        rc = main(["report", "--workload", "fig09", "--sizes", "65536"])
        assert rc == 0
        out = capsys.readouterr().out
        for scheme in DEFAULT_SCHEMES:
            assert scheme in out
        for col in ("copy_us", "wire_us", "overlap%", "reg_us"):
            assert col in out

    def test_requires_subcommand(self):
        from repro.obs.__main__ import main

        with pytest.raises(SystemExit):
            main([])


class TestHealthSection:
    def test_health_counters_filters_fault_names(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.report import format_health, health_counters

        m = MetricsRegistry()
        m.counter("faults.injected", node=0).inc(3)
        m.counter("qp.recoveries", node=1).inc(1)
        m.counter("rndv.timeouts").inc(2)
        m.counter("ib.descriptors").inc(99)  # not a health counter
        totals = health_counters(m)
        assert totals == {
            "faults.injected": 3,
            "qp.recoveries": 1,
            "rndv.timeouts": 2,
        }
        table = format_health(totals)
        assert "health (fault injection active)" in table
        assert "faults.injected" in table and "99" not in table

    def test_fault_free_run_has_no_health_section(self, capsys):
        run_report(workload="fig09", sizes=[4096], schemes=["bc-spup"])
        out = capsys.readouterr().out
        assert "health" not in out

    def test_lossy_profile_prints_health(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PROFILE", "lossy")
        monkeypatch.setenv("REPRO_FAULT_SEED", "1")  # injects on this workload
        run_report(
            workload="fig09", sizes=[262144], schemes=["bc-spup", "rwg-up"]
        )
        out = capsys.readouterr().out
        assert "health (fault injection active)" in out
        assert "faults." in out
