"""Trends CLI and offline dashboard over the run ledger."""

import pytest

from repro.obs import ledger, trends


def _record(i, value, status="pass", **kw):
    return ledger.make_record(
        "gate",
        timestamp=1700000000.0 + i * 3600,
        sha=f"{i:040x}",
        status=status,
        metrics={
            "fig08/bc-spup/cols=64": {
                "value": value, "unit": "us", "better": "lower",
            }
        },
        **kw,
    )


@pytest.fixture
def two_records(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path))
    ledger.append_record(_record(0, 100.0, events_per_sec={"post_poll": 5e6}))
    ledger.append_record(_record(1, 120.0, events_per_sec={"post_poll": 6e6}))
    return tmp_path / "ledger.jsonl"


class TestSparkline:
    def test_empty(self):
        assert trends.sparkline([]) == ""

    def test_flat_series_is_mid_bar(self):
        assert trends.sparkline([5.0, 5.0, 5.0]) == "▄▄▄"

    def test_monotone_ramps_low_to_high(self):
        s = trends.sparkline([1, 2, 3, 4])
        assert s[0] == "▁" and s[-1] == "█" and len(s) == 4


class TestRecordMetrics:
    def test_flattens_metrics_and_engine_throughput(self):
        flat = trends.record_metrics(_record(0, 42.0,
                                             events_per_sec={"pp": 1e6}))
        assert flat["fig08/bc-spup/cols=64"]["value"] == 42.0
        assert flat["engine/pp/events_per_sec"] == {
            "value": 1e6, "unit": "ev/s", "better": "higher",
        }

    def test_ignores_malformed_entries(self):
        rec = {"metrics": {"a": 3, "b": {"novalue": 1}, "c": {"value": 2}}}
        assert list(trends.record_metrics(rec)) == ["c"]

    def test_flattens_host_profile_categories(self):
        flat = trends.record_metrics(_record(0, 42.0, host_profile={
            "bandwidth": {
                "ns_per_event": {"heap": 900.0, "pack-unpack": 1400.0,
                                 "total": 8000.0},
                "closure": 1.0, "overhead": 0.06,
            },
        }))
        assert flat["host/bandwidth/heap"] == {
            "value": 900.0, "unit": "ns/ev", "better": "lower",
        }
        assert flat["host/bandwidth/pack-unpack"]["value"] == 1400.0
        assert flat["host/bandwidth/total"]["value"] == 8000.0

    def test_malformed_host_profile_ignored(self):
        rec = {"host_profile": {"bad": 3, "also-bad": {"ns_per_event": 7}}}
        assert trends.record_metrics(rec) == {}


class TestHostTrajectory:
    def test_host_keys_chart_over_the_ledger(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path))
        for i, pack_ns in enumerate((1400.0, 3100.0)):
            ledger.append_record(_record(i, 100.0, host_profile={
                "bandwidth": {
                    "ns_per_event": {"pack-unpack": pack_ns,
                                     "total": 7000.0 + pack_ns},
                    "closure": 1.0, "overhead": 0.06,
                },
            }))
        records = ledger.read_ledger()
        assert "host/bandwidth/pack-unpack" in trends.metric_keys(records)
        text = trends.format_trends(records, ["host/bandwidth/pack-unpack"])
        assert "host/bandwidth/pack-unpack" in text
        assert "(ns/ev, lower is better)" in text
        assert "+121.4%" in text  # 1400 -> 3100


class TestFormatTrends:
    def test_two_record_trajectory_with_delta(self, two_records):
        records = ledger.read_ledger(two_records)
        text = trends.format_trends(records)
        assert "perf trends — 2 ledger record(s)" in text
        assert "fig08/bc-spup/cols=64" in text
        assert "+20.0%" in text  # 100 -> 120
        assert "▁█" in text
        # engine throughput rides along under the unified key space
        assert "engine/post_poll/events_per_sec" in text

    def test_last_window_truncates(self, two_records):
        records = ledger.read_ledger(two_records)
        text = trends.format_trends(records, last=1)
        # only the newest row survives, so no delta column value
        assert "100.00" not in text and "120.00" in text


class TestDashboard:
    def test_offline_self_contained_html(self, two_records, tmp_path):
        records = ledger.read_ledger(two_records)
        out = trends.write_dashboard(records, tmp_path / "dash.html")
        html = out.read_text(encoding="utf-8")
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html  # sparkline rendered inline
        assert "fig08/bc-spup/cols=64" in html
        assert "prefers-color-scheme: dark" in html
        # fully offline: no external fetches of any kind
        for needle in ("http://", "https://", "<script", "@import"):
            assert needle not in html
        # table view + status badge (never color-alone)
        assert "<table>" in html
        assert 'class="badge pass">pass<' in html

    def test_fail_badge(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path))
        ledger.append_record(_record(0, 100.0, status="fail"))
        html = trends.dashboard_html(ledger.read_ledger())
        assert 'class="badge fail">fail<' in html


class TestRunTrends:
    def test_empty_ledger_exits_zero_with_message(self, tmp_path):
        out = []
        rc = trends.run_trends(tmp_path / "missing.jsonl", print_fn=out.append)
        assert rc == 0
        assert "ledger is empty" in out[0]

    def test_metric_filter(self, two_records):
        out = []
        rc = trends.run_trends(
            two_records, patterns=["engine/*"], print_fn=out.append
        )
        assert rc == 0
        text = "\n".join(out)
        assert "engine/post_poll/events_per_sec" in text
        assert "fig08/bc-spup/cols=64" not in text

    def test_filter_with_no_match_still_exits_zero(self, two_records):
        out = []
        rc = trends.run_trends(
            two_records, patterns=["nope/*"], print_fn=out.append
        )
        assert rc == 0
        assert "no ledger metrics match" in out[0]

    def test_writes_dashboard(self, two_records, tmp_path):
        out = []
        html = tmp_path / "d" / "dash.html"
        rc = trends.run_trends(two_records, html=html, print_fn=out.append)
        assert rc == 0
        assert html.exists()
        assert any("wrote dashboard" in line for line in out)

    def test_cli_entrypoint(self, two_records, capsys):
        from repro.obs.__main__ import main

        rc = main(["trends", "--ledger", str(two_records), "--last", "5"])
        assert rc == 0
        assert "perf trends" in capsys.readouterr().out
