"""Run-ledger durability: atomic appends under concurrent writers,
corrupt-tail tolerance, deterministic record content, path resolution."""

import json
import os
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.obs import ledger


@pytest.fixture
def ledger_file(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
    return tmp_path / "ledger" / "ledger.jsonl"


def _record(i=0, **kw):
    kw.setdefault("timestamp", 1000.0 + i)
    kw.setdefault("sha", f"{i:040x}")
    kw.setdefault("status", "pass")
    kw.setdefault("metrics", {"fig08/bc-spup/cols=8": {"value": 10.0 + i}})
    return ledger.make_record("gate", **kw)


class TestPaths:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "x"))
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "y"))
        assert ledger.ledger_path() == tmp_path / "x" / "ledger.jsonl"

    def test_results_dir_redirection(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "res"))
        assert (
            ledger.ledger_path()
            == tmp_path / "res" / "ledger" / "ledger.jsonl"
        )

    def test_default_is_checked_in_location(self, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
        monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
        assert str(ledger.ledger_path()).replace(os.sep, "/") == (
            "results/ledger/ledger.jsonl"
        )


class TestAppendRead:
    def test_roundtrip(self, ledger_file):
        for i in range(3):
            ledger.append_record(_record(i))
        records = ledger.read_ledger()
        assert [r["timestamp"] for r in records] == [1000.0, 1001.0, 1002.0]
        assert all(r["schema"] == ledger.SCHEMA_VERSION for r in records)

    def test_append_only_extends(self, ledger_file):
        ledger.append_record(_record(0))
        size0 = ledger_file.stat().st_size
        first = ledger_file.read_bytes()
        ledger.append_record(_record(1))
        data = ledger_file.read_bytes()
        assert data[:size0] == first  # history never rewritten
        assert data.count(b"\n") == 2

    def test_missing_file_reads_empty(self, ledger_file):
        assert ledger.read_ledger() == []

    def test_corrupt_tail_tolerated_as_truncation(self, ledger_file):
        ledger.append_record(_record(0))
        ledger.append_record(_record(1))
        # simulate a torn final write (crash mid-append)
        with open(ledger_file, "ab") as fh:
            fh.write(b'{"schema":1,"kind":"gate","time')
        records = ledger.read_ledger()
        assert [r["timestamp"] for r in records] == [1000.0, 1001.0]
        # the ledger keeps working: the next append lands on a new line...
        ledger.append_record(_record(2))
        records = ledger.read_ledger()
        # ...whose merged line with the torn tail is dropped, while both
        # original records survive — a torn write never corrupts history
        assert [r["timestamp"] for r in records][:2] == [1000.0, 1001.0]

    def test_corrupt_interior_line_skipped(self, ledger_file):
        ledger.append_record(_record(0))
        with open(ledger_file, "ab") as fh:
            fh.write(b"not json at all\n")
        ledger.append_record(_record(1))
        assert [r["timestamp"] for r in ledger.read_ledger()] == [
            1000.0,
            1001.0,
        ]

    def test_kind_filter(self, ledger_file):
        ledger.append_record(_record(0))
        ledger.append_record(
            ledger.make_record("selftest", timestamp=5.0, sha="s" * 40)
        )
        assert len(ledger.read_ledger(kind="gate")) == 1
        assert len(ledger.read_ledger(kind="selftest")) == 1


class TestDeterminism:
    def test_identical_inputs_identical_bytes(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PROFILE", "lossy")
        monkeypatch.setenv("REPRO_FAULT_SEED", "7")
        a = ledger.encode_record(_record(3))
        b = ledger.encode_record(_record(3))
        assert a == b
        rec = json.loads(a)
        assert rec["fault_env"] == {"profile": "lossy", "seed": "7"}
        assert rec["cost_model"]["wire_latency"] == 1.3
        assert rec["version"]

    def test_single_line_encoding(self):
        data = ledger.encode_record(_record(0))
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1

    def test_git_sha_env_short_circuit(self, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "f" * 40)
        assert ledger.git_sha() == "f" * 40


class TestLastGood:
    def test_picks_newest_passing_with_required_keys(self, ledger_file):
        ledger.append_record(_record(0, extra={"attribution": {}}))
        ledger.append_record(_record(1))  # newer but no attribution
        ledger.append_record(_record(2, status="fail"))
        records = ledger.read_ledger()
        best = ledger.last_good(records, require=("attribution",))
        assert best is not None and best["timestamp"] == 1000.0

    def test_baseline_status_counts_as_good(self, ledger_file):
        ledger.append_record(_record(0, status="baseline"))
        best = ledger.last_good(ledger.read_ledger())
        assert best is not None and best["status"] == "baseline"

    def test_none_on_empty(self):
        assert ledger.last_good([]) is None


def _hammer(args):
    """Worker: append ``count`` records to one shared ledger file."""
    path, writer, count = args
    for i in range(count):
        ledger.append_record(
            ledger.make_record(
                "gate",
                timestamp=float(writer * 1000 + i),
                sha=f"{writer:040x}",
                status="pass",
            ),
            path,
        )
    return count


class TestConcurrentWriters:
    def test_parallel_appends_interleave_whole_lines(self, tmp_path):
        """8 processes x 25 records: every line parses, none are lost."""
        path = str(tmp_path / "ledger.jsonl")
        writers, per_writer = 8, 25
        with ProcessPoolExecutor(max_workers=writers) as pool:
            done = list(
                pool.map(
                    _hammer,
                    [(path, w, per_writer) for w in range(writers)],
                )
            )
        assert sum(done) == writers * per_writer
        raw = open(path, "rb").read()
        lines = [ln for ln in raw.split(b"\n") if ln.strip()]
        assert len(lines) == writers * per_writer
        records = [json.loads(ln) for ln in lines]  # all parse
        # every (writer, i) pair arrived exactly once
        seen = {(r["sha"], r["timestamp"]) for r in records}
        assert len(seen) == writers * per_writer
        # read_ledger agrees
        assert len(ledger.read_ledger(path)) == writers * per_writer
