"""Host-time profiler: taxonomy, closure, duty cycling, and exports.

Includes the acceptance tests: closure >= 95% of run-loop wall time on
all seven schemes (exact tiling by construction — the tolerance only
absorbs the few ns of loop entry/exit), and the CLI smoke run that CI's
tier-1 job exercises.
"""

import json

import pytest

from repro.obs.hostprof import (
    CALLBACK_CATEGORIES,
    DEFAULT_DUTY,
    HOST_CATEGORIES,
    HostProfiler,
    format_hotspots,
    host_category,
    hostprof_markdown,
    hostprof_transfer,
    run_hostprof,
    top_categories,
    write_artifacts,
)

ALL_SCHEMES = ("generic", "bc-spup", "rwg-up", "p-rrs", "multi-w", "hybrid",
               "adaptive")


def column_dt(cols=64):
    from repro.bench.workloads import column_vector

    return column_vector(cols).datatype


class TestHostCategory:
    def test_string_tags_reuse_simulated_categories(self):
        assert host_category("pack") == "copy"
        assert host_category("wire") == "wire"
        assert host_category("register") == "registration"
        assert host_category(None) == "protocol-wait"

    def test_resource_wait_tuple(self):
        assert host_category(("resource-wait", "cpu")) == "resource-wait"

    def test_store_and_signal_wait_tuples(self):
        assert host_category(("store-wait", 7)) == "protocol-wait"
        assert host_category(("signal-wait", 7)) == "protocol-wait"

    def test_split_tuple_bills_absorbing_part(self):
        tag = ("split", (("copy", 3.0), ("wire", None)))
        assert host_category(tag) == "wire"
        tag = ("split", (("copy", 3.0), ("descriptor", 1.0)))
        assert host_category(tag) == "copy"

    def test_unknown_tuple_falls_to_protocol_wait(self):
        assert host_category(("mystery",)) == "protocol-wait"


class TestProfilerAccounting:
    """Pure-aggregation behaviour with a fake injected clock."""

    def make(self, **kw):
        return HostProfiler(clock=lambda: 0, **kw)

    def test_categories_cover_taxonomy(self):
        hp = self.make()
        assert set(hp.measured()) == set(HOST_CATEGORIES)
        assert set(hp.totals()) == set(HOST_CATEGORIES)

    def test_unsampled_pool_apportioned_pro_rata(self):
        hp = self.make()
        hp.callback_ns["copy"] = 3000
        hp.callback_ns["wire"] = 1000
        hp.self_ns = 500
        hp.unsampled_ns = 4000
        totals = hp.totals()
        # pool splits 3:1 over the measured non-self categories
        assert totals["callback.copy"] == 6000
        assert totals["callback.wire"] == 2000
        # profiler-self never receives pool time (no profiler work
        # happens off-duty)
        assert totals["profiler-self"] == 500
        assert sum(totals.values()) == hp.attributed_ns

    def test_empty_measured_pool_lands_in_dispatch(self):
        hp = self.make()
        hp.unsampled_ns = 1234
        assert hp.totals()["dispatch"] == 1234

    def test_nested_excluded_outside_run(self):
        hp = self.make()
        hp.add_nested("pack-unpack", 999)
        assert hp.nested == {}
        hp.run_begin()
        hp.add_nested("pack-unpack", 999)
        hp.run_end(wall_ns=10_000, sim_now=1.0)
        assert hp.nested == {("pack-unpack", None): 999}

    def test_snapshot_round_trips_through_json(self):
        hp = self.make()
        hp.run_begin()
        hp.add_callback("copy", 100, 0)
        hp.run_end(wall_ns=100, sim_now=2.0)
        snap = json.loads(json.dumps(hp.snapshot()))
        assert snap["events"] == 1
        assert snap["closure"] == pytest.approx(1.0)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_closure_at_least_95_percent_every_scheme(scheme):
    hp, _cluster = hostprof_transfer(scheme, column_dt(), iters=2)
    assert hp.total_events > 0
    assert hp.closure() >= 0.95, (
        f"{scheme}: closure {hp.closure():.3f} — "
        f"{hp.attributed_ns} of {hp.run_wall_ns} ns attributed"
    )


class TestDutyCycle:
    def test_default_duty_leaves_unsampled_pool(self):
        hp, _ = hostprof_transfer("bc-spup", column_dt(), iters=2)
        assert (hp.duty_on, hp.duty_off) == DEFAULT_DUTY
        assert hp.unsampled_events > 0
        assert hp.unsampled_ns > 0
        assert hp.events + hp.unsampled_events == hp.total_events

    def test_exact_mode_instruments_every_dispatch(self):
        hp, _ = hostprof_transfer("bc-spup", column_dt(), iters=2,
                                  duty=(1, 0))
        assert hp.unsampled_events == 0
        assert hp.unsampled_ns == 0
        assert hp.events == hp.total_events
        assert hp.closure() >= 0.95

    def test_event_counts_match_simulator(self):
        hp, cluster = hostprof_transfer("bc-spup", column_dt(), iters=2)
        assert hp.total_events == cluster.sim.events_processed

    def test_pack_unpack_attributed(self):
        # bc-spup packs on the sender and unpacks on the receiver — the
        # nested probes must see it even under the default duty cycle
        hp, _ = hostprof_transfer("bc-spup", column_dt(), iters=4)
        assert hp.totals()["pack-unpack"] > 0


class TestExports:
    def test_collapsed_stack_format(self):
        hp, _ = hostprof_transfer("bc-spup", column_dt(), iters=2)
        text = hp.collapsed()
        lines = [ln for ln in text.splitlines() if ln]
        assert lines
        for ln in lines:
            frames, _, value = ln.rpartition(" ")
            assert frames.startswith("engine")
            assert int(value) > 0
        assert any(ln.startswith("engine;unsampled ") for ln in lines)
        assert any(ln.startswith("engine;callback;") for ln in lines)

    def test_counter_series_feed_chrome_tracks(self):
        from repro.obs.chrome import counter_track_events

        hp, _ = hostprof_transfer("bc-spup", column_dt(), iters=2)
        events = counter_track_events(hp.series)
        names = {e["name"] for e in events}
        assert any(name.startswith("host.") for name in names)
        # cumulative series: per-track values never decrease
        by_name = {}
        for e in events:
            by_name.setdefault(e["name"], []).append(e)
        for name, evs in by_name.items():
            if not name.startswith("host."):
                continue
            vals = [next(iter(e["args"].values())) for e in evs]
            assert vals == sorted(vals), name

    def test_hotspot_table_and_top_categories(self):
        hp, _ = hostprof_transfer("bc-spup", column_dt(), iters=2)
        snap = hp.snapshot()
        text = format_hotspots(snap, title="t")
        assert "host category" in text
        assert "closure:" in text
        tops = top_categories(snap, 3)
        assert len(tops) == 3
        assert all(cat in HOST_CATEGORIES for cat, _ns in tops)
        # ranked by total ns, descending
        totals = snap["totals_ns"]
        ranked = sorted(totals.values(), reverse=True)
        assert [totals[cat] for cat, _ in tops] == ranked[:3]

    def test_markdown_summary_has_all_schemes(self):
        hp, _ = hostprof_transfer("bc-spup", column_dt(), iters=1)
        results = {"bc-spup": hp.snapshot()}
        md = hostprof_markdown(results, "fig09", 4096)
        assert "| bc-spup |" in md
        assert "closure" in md


class TestCliAndArtifacts:
    def test_run_hostprof_prints_tables(self):
        lines = []
        results = run_hostprof(
            workload="fig09", nbytes=8192, schemes=["bc-spup"], iters=1,
            print_fn=lambda *p: lines.append(" ".join(str(x) for x in p)),
        )
        assert "bc-spup" in results
        assert any("host category" in ln for ln in lines)

    def test_cli_smoke(self, capsys):
        from repro.obs.__main__ import main

        rc = main(["hostprof", "fig09", "bc-spup", "--size", "8192",
                   "--iters", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "host time: bc-spup" in out
        assert "closure:" in out

    def test_artifact_bundle(self, tmp_path):
        outdir = tmp_path / "hp"
        results = write_artifacts(
            outdir, workload="fig09", nbytes=8192, schemes=["bc-spup"],
            iters=1, print_fn=lambda *p: None,
        )
        assert "bc-spup" in results
        assert (outdir / "hotspots.txt").exists()
        assert (outdir / "summary.md").exists()
        assert (outdir / "stacks.bc-spup.collapsed").exists()
        assert (outdir / "trace.bc-spup.8192.json").exists()
        doc = json.loads((outdir / "hostprof.json").read_text())
        assert doc["bc-spup"]["closure"] >= 0.95
