"""Tests for report formatting and CSV output."""

import csv
import os

import pytest

from repro.bench.report import Series, improvement, print_table, write_csv


class TestImprovement:
    def test_factors(self):
        assert improvement([10, 20], [5, 10]) == [2.0, 2.0]

    def test_zero_guard(self):
        assert improvement([10], [0]) == [float("inf")]


class TestPrintTable:
    def test_contains_values_and_factors(self, capsys):
        a = Series("base", [100.0, 200.0])
        b = Series("fast", [50.0, 100.0])
        text = print_table("T", "x", [1, 2], [a, b], unit="us", baseline="base")
        assert "100.0" in text
        assert "2.00x" in text
        assert "fast vs base" in text

    def test_bandwidth_factors_invert(self):
        a = Series("base", [100.0])
        b = Series("fast", [200.0])
        text = print_table("T", "x", [1], [a, b], unit="MB/s", baseline="base")
        assert "2.00x" in text  # higher bandwidth = improvement

    def test_no_baseline(self):
        a = Series("only", [1.0])
        text = print_table("T", "x", [9], [a])
        assert "vs" not in text

    def test_alignment(self):
        a = Series("s", [1.0, 22222.0])
        text = print_table("T", "x", [1, 1000], [a])
        lines = text.splitlines()[2:]
        assert len({len(l) for l in lines}) == 1  # all rows same width


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "out" / "data.csv")
        a = Series("a", [1.5, 2.5])
        b = Series("b", [3.0, 4.0])
        write_csv(path, "x", [10, 20], [a, b])
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["x", "a", "b"]
        assert rows[1] == ["10", "1.5", "3.0"]
        assert rows[2] == ["20", "2.5", "4.0"]
