"""Tests for the paper's benchmark workload definitions."""

import pytest

from repro.bench.workloads import column_vector, fig10_struct


class TestColumnVector:
    def test_matches_paper_shape(self):
        """MPI_Type_vector(128, x, 4096, MPI_INT)."""
        w = column_vector(7)
        assert w.nbytes == 128 * 7 * 4
        assert w.nblocks == 128
        assert w.block_bytes == 28.0

    def test_full_row_is_one_block(self):
        w = column_vector(4096)
        assert w.nblocks == 1

    def test_bounds(self):
        with pytest.raises(ValueError):
            column_vector(0)
        with pytest.raises(ValueError):
            column_vector(5000)

    def test_custom_shape(self):
        w = column_vector(2, rows=4, row_len=16)
        assert w.nbytes == 4 * 2 * 4
        assert w.nblocks == 4


class TestFig10Struct:
    def test_block_sizes_grow_exponentially(self):
        w = fig10_struct(8)
        flat = w.datatype.flatten(1)
        assert list(flat.lengths) == [4, 8, 16, 32]  # 1, 2, 4, 8 ints

    def test_gap_equals_block(self):
        """Figure 10: 'The gap between two blocks equals to the size of
        the first block' — so block k+1 starts at 2x the cumulative size."""
        w = fig10_struct(16)
        flat = w.datatype.flatten(1)
        for i in range(flat.nblocks - 1):
            gap = flat.offsets[i + 1] - (flat.offsets[i] + flat.lengths[i])
            assert gap == flat.lengths[i]

    def test_total_size(self):
        # 1 + 2 + ... + 2^k ints
        w = fig10_struct(2048)
        assert w.nbytes == (2 * 2048 - 1) * 4

    def test_paper_block_range_example(self):
        """'when the number of integers in the last block is 8192, the
        block sizes vary from 4 bytes to 32768 bytes'."""
        w = fig10_struct(8192)
        flat = w.datatype.flatten(1)
        assert flat.min_block == 4
        assert flat.max_block == 32768

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            fig10_struct(100)
