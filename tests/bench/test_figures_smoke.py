"""Smoke tests for the figure sweeps on tiny parameter sets.

The full sweeps (and their shape assertions) live in benchmarks/; here we
only verify the harness machinery: custom sweeps, caching, CSV output,
and the CLI plumbing.
"""

import os

import pytest

from repro.bench import figures
from repro.bench.__main__ import main as bench_main

# timing anchors are meaningless under fault injection
pytestmark = pytest.mark.faultfree


class TestTinySweeps:
    def test_fig08_custom_columns(self):
        cols, out = figures.fig08((8, 64))
        assert cols == [8, 64]
        for series in out.values():
            assert len(series.y) == 2
            assert all(v > 0 for v in series.y)

    def test_fig14_custom_columns(self):
        cols, out = figures.fig14((16, 128))
        assert cols == [16, 128]

    def test_caching_returns_same_object(self):
        a = figures.fig08((8, 64))
        b = figures.fig08((8, 64))
        assert a is b

    def test_csv_written(self, bench_results_dir):
        figures.fig08((8, 64))
        # redirected by REPRO_RESULTS_DIR — never the checked-in results/
        assert (bench_results_dir / "results" / "fig08.csv").exists()


class TestCli:
    def test_cli_runs_figure_with_cols(self, capsys):
        # use a column set no other test asks for: the figure functions
        # are lru_cached per sweep, and a cache hit prints nothing
        rc = bench_main(["fig08", "--cols", "4", "16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out

    def test_cli_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            bench_main(["fig99"])
