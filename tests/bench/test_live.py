"""Live sweep telemetry: the JSONL progress stream run_cells emits."""

import io
import itertools
import json

import pytest

from repro.bench import parallel
from repro.bench.parallel import Cell, run_cells
from repro.obs.live import LiveLog, open_live_log

CELLS = [
    Cell(fig, scheme, cols)
    for fig in ("fig08", "fig09")
    for scheme in ("bc-spup", "rwg-up")
    for cols in (8, 16)
]


def _fake_clock(step=0.25):
    counter = itertools.count()
    return lambda: next(counter) * step


def _read(path):
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


@pytest.fixture(autouse=True)
def fresh_stats(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    parallel.STATS.reset()
    parallel.set_live_log(None)
    yield
    parallel.set_live_log(None)


class TestLiveLog:
    def test_record_stream_shapes(self):
        sink = io.StringIO()
        log = LiveLog(sink, clock=_fake_clock(), jobs=2)
        log.sweep_start(total=2, cached=0, to_run=2)
        log.cell_done(CELLS[0], 12.5, cached=False, in_flight=2)
        log.cell_done(CELLS[1], 13.5, cached=True, in_flight=1)
        log.sweep_end(parallel.STATS)
        log.close()
        recs = [json.loads(ln) for ln in sink.getvalue().splitlines()]
        assert [r["event"] for r in recs] == [
            "sweep-start", "cell", "cell", "sweep-end",
        ]
        start, first, second, end = recs
        assert start["jobs"] == 2 and start["to_run"] == 2
        assert first["figure"] == "fig08" and first["series"] == "bc-spup"
        assert first["x"] == 8 and first["value"] == 12.5
        assert first["done"] == 1 and first["total"] == 2
        assert first["utilization"] == 1.0  # 2 in flight / 2 workers
        assert first["eta_s"] > 0  # one executed, one remaining
        assert second["cached"] is True
        assert end["done"] == 2

    def test_eta_uses_executed_rate_only(self):
        sink = io.StringIO()
        log = LiveLog(sink, clock=_fake_clock(1.0), jobs=1)
        log.sweep_start(total=3, cached=2, to_run=1)
        log.cell_done(CELLS[0], 1.0, cached=True)
        rec = json.loads(sink.getvalue().splitlines()[-1])
        assert rec["eta_s"] == 0.0  # cache hits predict nothing

    def test_dead_sink_never_raises(self):
        sink = io.StringIO()
        sink.close()
        log = LiveLog(sink, clock=_fake_clock(), jobs=1)
        log.sweep_start(total=1, cached=0, to_run=1)  # swallowed
        log.cell_done(CELLS[0], 1.0, cached=False)
        log.close()


class TestOpenLiveLog:
    def test_disabled_when_unset(self):
        assert open_live_log(None, clock=_fake_clock()) is None
        assert open_live_log("", clock=_fake_clock()) is None

    def test_stderr_specs(self, capsys):
        for spec in ("-", "stderr"):
            log = open_live_log(spec, clock=_fake_clock(), jobs=3)
            log.sweep_start(total=1, cached=0, to_run=1)
            log.close()  # must not close stderr
        err = capsys.readouterr().err
        assert err.count('"sweep-start"') == 2

    def test_file_spec_appends(self, tmp_path):
        path = tmp_path / "live.jsonl"
        for _ in range(2):
            log = open_live_log(str(path), clock=_fake_clock(), jobs=1)
            log.sweep_start(total=0, cached=0, to_run=0)
            log.close()
        assert len(_read(path)) == 2  # append mode: streams accumulate


class TestSweepTelemetry:
    def test_parallel_sweep_emits_per_cell_records(self, tmp_path):
        """-j 4 sweep: one cell record per cell, final stats reconcile
        exactly with parallel.STATS (the issue's acceptance check)."""
        path = tmp_path / "live.jsonl"
        parallel.set_live_log(str(path))
        values = run_cells(CELLS, jobs=4)
        assert len(values) == len(CELLS)

        recs = _read(path)
        assert recs[0]["event"] == "sweep-start"
        assert recs[0]["total"] == len(CELLS)
        cell_recs = [r for r in recs if r["event"] == "cell"]
        assert len(cell_recs) == len(CELLS)
        seen = {(r["figure"], r["series"], r["x"]) for r in cell_recs}
        assert seen == {(c.figure, c.series, c.x) for c in CELLS}
        # values in the stream match the merged sweep results
        for r in cell_recs:
            assert r["value"] == values[Cell(r["figure"], r["series"], r["x"])]
        assert all(not r["cached"] for r in cell_recs)
        assert all(
            0.0 <= r["utilization"] <= 1.0 and r["in_flight"] >= 0
            for r in cell_recs
        )
        assert [r["done"] for r in cell_recs] == list(
            range(1, len(CELLS) + 1)
        )

        end = recs[-1]
        assert end["event"] == "sweep-end"
        assert end["stats"] == {
            "cells": parallel.STATS.cells,
            "cache_hits": parallel.STATS.cache_hits,
            "executed": parallel.STATS.executed,
        }
        assert end["stats"]["executed"] == len(CELLS)

    def test_warm_rerun_reports_cache_hits(self, tmp_path):
        parallel.set_live_log(None)
        run_cells(CELLS[:4], jobs=1)  # warm the cache silently
        path = tmp_path / "live.jsonl"
        parallel.set_live_log(str(path))
        run_cells(CELLS[:4], jobs=1)
        recs = _read(path)
        assert recs[0]["cached"] == 4 and recs[0]["to_run"] == 0
        cell_recs = [r for r in recs if r["event"] == "cell"]
        assert len(cell_recs) == 4
        assert all(r["cached"] for r in cell_recs)
        assert recs[-1]["stats"]["cache_hits"] == parallel.STATS.cache_hits

    def test_serial_sweep_also_streams(self, tmp_path):
        path = tmp_path / "live.jsonl"
        parallel.set_live_log(str(path))
        run_cells(CELLS[:2], jobs=1)
        events = [r["event"] for r in _read(path)]
        assert events == ["sweep-start", "cell", "cell", "sweep-end"]

    def test_no_telemetry_when_disabled(self, tmp_path):
        run_cells(CELLS[:2], jobs=1)
        assert not list(tmp_path.glob("*.jsonl"))
