"""Bench-test fixtures: keep sweep output away from checked-in results/.

The figure and ablation sweeps write CSVs to relative ``results/...``
paths, so a test run from the repo root would silently overwrite the
checked-in reproduction data with tiny smoke-test sweeps.  Every test in
this directory therefore gets ``REPRO_RESULTS_DIR`` pointed at one shared
temporary directory (session-scoped, because the sweep functions are
lru_cached across tests and only write their CSV on the first call).
"""

import os

import pytest


@pytest.fixture(autouse=True, scope="session")
def bench_results_dir(tmp_path_factory):
    """Redirect relative write_csv() paths into a temp dir for the session."""
    d = tmp_path_factory.mktemp("bench-results")
    old = os.environ.get("REPRO_RESULTS_DIR")
    os.environ["REPRO_RESULTS_DIR"] = str(d)
    yield d
    if old is None:
        os.environ.pop("REPRO_RESULTS_DIR", None)
    else:
        os.environ["REPRO_RESULTS_DIR"] = old


@pytest.fixture(autouse=True, scope="session")
def bench_cache_dir(tmp_path_factory):
    """Point the sweep result cache away from the repo's .repro-cache/.

    Same rationale as ``bench_results_dir``: test sweeps must never
    populate (or read) the developer's real cell cache.
    """
    d = tmp_path_factory.mktemp("bench-cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(d)
    yield d
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old
