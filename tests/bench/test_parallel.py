"""Parallel sweep executor: serial/parallel equivalence, result cache,
jobs resolution, and the gate's baseline error handling."""

import json
import os

import pytest

from repro.bench import figures, gate, parallel
from repro.bench.parallel import Cell, cell_key, resolve_jobs, run_cells


@pytest.fixture
def isolated_dirs(tmp_path, monkeypatch):
    """Per-test results + cache dirs (figures are called via __wrapped__
    to bypass the lru memo, so every call re-runs the sweep)."""
    results = tmp_path / "results"
    cache = tmp_path / "cache"
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(results))
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))
    return results, cache


def _csv_bytes(results_dir, name):
    return (results_dir / "results" / name).read_bytes()


class TestJobsResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(parallel.JOBS_ENV, raising=False)
        parallel.set_jobs(None)
        assert resolve_jobs() == 1

    def test_env_respected(self, monkeypatch):
        monkeypatch.setenv(parallel.JOBS_ENV, "3")
        parallel.set_jobs(None)
        assert resolve_jobs() == 3

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(parallel.JOBS_ENV, "3")
        assert resolve_jobs(2) == 2

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(parallel.JOBS_ENV, "lots")
        parallel.set_jobs(None)
        with pytest.raises(ValueError):
            resolve_jobs()


class TestCacheKey:
    def test_key_is_stable(self):
        a = Cell("fig08", "bc-spup", 8)
        assert cell_key(a) == cell_key(Cell("fig08", "bc-spup", 8))

    def test_key_separates_cells(self):
        keys = {
            cell_key(Cell("fig08", "bc-spup", 8)),
            cell_key(Cell("fig08", "bc-spup", 16)),
            cell_key(Cell("fig08", "rwg-up", 8)),
            cell_key(Cell("fig09", "bc-spup", 8)),
            cell_key(Cell("fig11", "bc-spup", 2048, (("nranks", 4),))),
            cell_key(Cell("fig11", "bc-spup", 2048, (("nranks", 8),))),
        }
        assert len(keys) == 6

    def test_fault_environment_changes_key(self, monkeypatch):
        cell = Cell("fig08", "bc-spup", 8)
        monkeypatch.delenv("REPRO_FAULT_PROFILE", raising=False)
        clean = cell_key(cell)
        monkeypatch.setenv("REPRO_FAULT_PROFILE", "lossy")
        assert cell_key(cell) != clean


class TestCacheStore:
    def test_roundtrip_exact_float(self, isolated_dirs):
        cell = Cell("fig08", "bc-spup", 8)
        key = cell_key(cell)
        value = 123.45678901234567
        parallel._cache_store(key, cell, value)
        assert parallel._cache_load(key) == value

    def test_corrupt_entry_is_a_miss(self, isolated_dirs):
        cell = Cell("fig08", "bc-spup", 8)
        key = cell_key(cell)
        path = parallel._cache_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json")
        assert parallel._cache_load(key) is None

    def test_use_cache_false_bypasses(self, isolated_dirs, monkeypatch):
        calls = []
        monkeypatch.setattr(
            parallel, "evaluate_cell", lambda cell: calls.append(cell) or 1.0
        )
        cells = [Cell("fig08", "bc-spup", 8)]
        run_cells(cells, jobs=1, use_cache=False)
        run_cells(cells, jobs=1, use_cache=False)
        assert len(calls) == 2
        _, cache = isolated_dirs
        assert not list(cache.rglob("*.json"))


class TestEquivalence:
    """-j 1, -j 4, and a warm-cache re-run must produce byte-identical CSVs."""

    GRID = (8, 64)

    def test_serial_parallel_warm_identical(self, isolated_dirs, tmp_path,
                                            monkeypatch):
        results, _cache = isolated_dirs
        parallel.STATS.reset()

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache-serial"))
        figures.fig08.__wrapped__(self.GRID)
        serial = _csv_bytes(results, "fig08.csv")
        assert parallel.STATS.cache_hits == 0
        assert parallel.STATS.executed == len(self.GRID) * 4

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache-par"))
        parallel.STATS.reset()
        figures.fig08.__wrapped__(self.GRID)
        # same dir, same filename: the parallel run overwrites the serial CSV
        assert _csv_bytes(results, "fig08.csv") == serial

        # warm re-run: every cell served from cache, output still identical
        parallel.STATS.reset()
        figures.fig08.__wrapped__(self.GRID)
        assert parallel.STATS.cache_hits == parallel.STATS.cells
        assert parallel.STATS.executed == 0
        assert _csv_bytes(results, "fig08.csv") == serial

    @pytest.mark.slow
    def test_process_pool_matches_serial(self, isolated_dirs, tmp_path,
                                         monkeypatch):
        results, _cache = isolated_dirs
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache-a"))
        parallel.set_jobs(None)
        figures.fig08.__wrapped__(self.GRID)
        serial = _csv_bytes(results, "fig08.csv")

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache-b"))
        parallel.set_jobs(4)
        try:
            parallel.STATS.reset()
            figures.fig08.__wrapped__(self.GRID)
        finally:
            parallel.set_jobs(None)
        assert parallel.STATS.executed == len(self.GRID) * 4
        assert _csv_bytes(results, "fig08.csv") == serial


class TestGateErrors:
    def _shrink(self, monkeypatch):
        monkeypatch.setattr(gate, "SCHEMES", ("bc-spup",))
        monkeypatch.setattr(gate, "COLUMNS", (8,))

    def test_missing_baseline_clear_message(self, tmp_path, monkeypatch,
                                            capsys):
        self._shrink(monkeypatch)
        rc = gate.main(["--baseline", str(tmp_path / "nope.json")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "no baseline" in err
        assert "--write-baseline" in err
        assert "Traceback" not in err

    def test_corrupt_baseline_clear_message(self, tmp_path, monkeypatch,
                                            capsys):
        self._shrink(monkeypatch)
        bad = tmp_path / "baseline.json"
        bad.write_text("{oops")
        rc = gate.main(["--baseline", str(bad)])
        assert rc == 2
        assert "cannot read baseline" in capsys.readouterr().err

    def test_missing_entry_clear_message(self, tmp_path, monkeypatch, capsys):
        self._shrink(monkeypatch)
        partial = tmp_path / "baseline.json"
        partial.write_text(json.dumps(
            {"metrics": {"fig08/bc-spup/cols=8": {
                "value": 1.0, "unit": "us", "better": "lower"}}}
        ))
        rc = gate.main(["--baseline", str(partial)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "no entry" in err
        assert "fig09/bc-spup/cols=8" in err

    def test_complete_baseline_passes(self, tmp_path, monkeypatch, capsys):
        self._shrink(monkeypatch)
        path = tmp_path / "baseline.json"
        rc = gate.main(["--baseline", str(path), "--write-baseline"])
        assert rc == 0
        rc = gate.main(["--baseline", str(path)])
        assert rc == 0
        assert "benchmark gate passed" in capsys.readouterr().out


class TestSelftest:
    def test_engine_microbench_reports_rates(self):
        from repro.bench.selftest import engine_microbench

        report = engine_microbench()
        for name in ("pingpong", "bandwidth"):
            assert report[name]["events"] > 0
            assert report[name]["events_per_sec"] > 0
