"""Selftest engine microbenchmarks: event accounting, repeats, host
profiling, and the overhead budget plumbing."""

import json

import pytest

from repro.bench.selftest import (
    DEFAULT_OVERHEAD_BUDGET,
    _check_overhead,
    engine_microbench,
    format_selftest,
)


class TestEventAccounting:
    def test_reports_rates_and_ns_per_event(self):
        report = engine_microbench()
        for name in ("pingpong", "bandwidth"):
            m = report[name]
            assert m["events"] > 0
            assert m["events_per_sec"] > 0
            assert m["ns_per_event"] == pytest.approx(
                m["wall_s"] * 1e9 / m["events"]
            )
            assert "host" not in m

    def test_counts_only_the_measured_run(self, monkeypatch):
        """Regression: events dispatched before the timed ``run()`` (here:
        synthetic setup work on the same simulator) must not inflate the
        reported event count."""
        import repro.mpi.world as world

        baseline = engine_microbench()
        real_cluster = world.Cluster

        class PreloadedCluster(real_cluster):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                for _ in range(25):
                    self.sim.timeout(0.0)
                self.sim.run()
                assert self.sim.events_processed >= 25

        monkeypatch.setattr(world, "Cluster", PreloadedCluster)
        report = engine_microbench()
        for name in ("pingpong", "bandwidth"):
            # the pre-run drains a handful of setup events the baseline
            # counts inside its measured run, so the count may dip
            # slightly — but the 25 synthetic events must never appear
            # (the old code reported the simulator's lifetime total)
            assert report[name]["events"] <= baseline[name]["events"]
            assert report[name]["events"] > baseline[name]["events"] - 25


class TestHostProfiledBench:
    def test_host_section_shape(self):
        report = engine_microbench(host_profile=True)
        for name in ("pingpong", "bandwidth"):
            host = report[name]["host"]
            assert host["closure"] >= 0.95
            assert host["events"] > 0
            nspe = host["ns_per_event"]
            assert "total" in nspe and nspe["total"] > 0
            assert "pack-unpack" in nspe
            assert "snapshot" not in report[name]
            json.dumps(host)  # ledger payload must serialize

    def test_overhead_check_passes_within_budget(self):
        report = {"engine": {
            "pingpong": {"ns_per_event": 1000.0, "host": {
                "overhead": 0.05, "ns_per_event": {"total": 1050.0}}},
        }}
        _check_overhead(report, DEFAULT_OVERHEAD_BUDGET, repeats=1)

    def test_overhead_check_retries_then_fails(self, monkeypatch):
        bad = {"engine": {
            "bandwidth": {"ns_per_event": 1000.0, "host": {
                "overhead": 0.50, "ns_per_event": {"total": 1500.0}}},
        }}
        calls = []

        def fake_retry(repeats, host_profile):
            calls.append(repeats)
            return {"bandwidth": bad["engine"]["bandwidth"]}

        monkeypatch.setattr(
            "repro.bench.selftest.engine_microbench", fake_retry
        )
        with pytest.raises(AssertionError, match="host-profiler overhead"):
            _check_overhead(bad, 0.15, repeats=3)
        assert calls == [5]  # one higher-repeat confirmation run

    def test_overhead_check_retry_can_clear(self, monkeypatch):
        bad_host = {"overhead": 0.50, "ns_per_event": {"total": 1500.0}}
        good_host = {"overhead": 0.05, "ns_per_event": {"total": 1050.0}}
        report = {"engine": {
            "bandwidth": {"ns_per_event": 1000.0, "host": dict(bad_host)},
        }}
        monkeypatch.setattr(
            "repro.bench.selftest.engine_microbench",
            lambda repeats, host_profile: {
                "bandwidth": {"ns_per_event": 1000.0, "host": good_host}
            },
        )
        _check_overhead(report, 0.15, repeats=3)  # must not raise
        # the report keeps the confirmed (clean) measurement
        assert report["engine"]["bandwidth"]["host"]["overhead"] == 0.05


class TestFormatting:
    def test_table_shows_ns_per_event_and_host_lines(self):
        report = {
            "jobs": 1,
            "engine": {
                "pingpong": {
                    "events": 1000, "wall_s": 0.01,
                    "events_per_sec": 100000.0, "ns_per_event": 10000.0,
                    "host": {
                        "events": 1000, "closure": 1.0, "overhead": 0.07,
                        "ns_per_event": {
                            "heap": 900.0, "dispatch": 800.0,
                            "callback.protocol-wait": 4000.0,
                            "pack-unpack": 2000.0, "total": 10700.0,
                        },
                    },
                },
            },
            "figures": {},
        }
        text = format_selftest(report)
        assert "10000 ns/ev" in text
        assert "host-profiled" in text
        assert "+7.0% overhead" in text
        assert "closure 100.0%" in text
        assert "callback.protocol-wait 4000" in text


class TestLedgerRecord:
    def test_selftest_record_carries_host_profile(self):
        from repro.bench.__main__ import _append_selftest_record  # noqa: F401
        from repro.obs.ledger import make_record

        record = make_record(
            "selftest",
            timestamp=1.0,
            host_profile={"bandwidth": {"ns_per_event": {"total": 9000.0}}},
        )
        assert record["host_profile"]["bandwidth"]["ns_per_event"]["total"] \
            == 9000.0

    def test_trends_chart_host_categories(self):
        from repro.obs.trends import record_metrics

        record = {
            "kind": "selftest",
            "host_profile": {
                "bandwidth": {
                    "ns_per_event": {"heap": 900.0, "total": 9000.0},
                    "closure": 1.0,
                    "overhead": 0.06,
                },
            },
        }
        flat = record_metrics(record)
        assert flat["host/bandwidth/heap"] == {
            "value": 900.0, "unit": "ns/ev", "better": "lower",
        }
        assert flat["host/bandwidth/total"]["value"] == 9000.0
