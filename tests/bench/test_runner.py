"""Smoke + semantic tests for the measurement runners and overlap tool.

These use reduced iteration counts; the full sweeps live in benchmarks/.
"""

import pytest

from repro.bench.overlap import measure_overlap
from repro.bench.runner import (
    measure_alltoall,
    measure_bandwidth,
    measure_contig_pingpong,
    measure_manual_pingpong,
    measure_multiple_pingpong,
    measure_pingpong,
)
from repro.bench.workloads import column_vector, fig10_struct

# timing anchors are meaningless under fault injection
pytestmark = pytest.mark.faultfree


class TestPingpong:
    def test_returns_positive_latency(self):
        w = column_vector(64)
        t = measure_pingpong("bc-spup", w.datatype, iters=2)
        assert t > 0

    def test_warmup_excluded(self):
        """With a registration-heavy scheme, measuring with warmup must be
        cheaper than measuring the cold iteration."""
        w = column_vector(512)
        warm = measure_pingpong("multi-w", w.datatype, iters=2, warmup=1)
        cold = measure_pingpong("multi-w", w.datatype, iters=1, warmup=0)
        assert warm < cold

    def test_latency_monotonic_in_size(self):
        small = measure_pingpong("generic", column_vector(32).datatype, iters=2)
        large = measure_pingpong("generic", column_vector(1024).datatype, iters=2)
        assert large > small

    def test_contig_faster_than_datatype(self):
        w = column_vector(256)
        contig = measure_contig_pingpong(w.nbytes, iters=2)
        datatype = measure_pingpong("generic", w.datatype, iters=2)
        assert contig < datatype

    def test_manual_close_to_datatype(self):
        w = column_vector(256)
        manual = measure_manual_pingpong(w.datatype, iters=2)
        datatype = measure_pingpong("generic", w.datatype, iters=2)
        assert manual == pytest.approx(datatype, rel=0.15)

    def test_multiple_pays_per_block(self):
        w = column_vector(8)
        multiple = measure_multiple_pingpong(w.datatype, iters=1)
        datatype = measure_pingpong("generic", w.datatype, iters=1)
        assert multiple > datatype


class TestBandwidth:
    def test_bandwidth_sane(self):
        w = column_vector(512)
        bw = measure_bandwidth("bc-spup", w.datatype, window=20)
        assert 50 < bw < 900  # below wire rate, above nonsense

    def test_bandwidth_grows_with_message_size(self):
        small = measure_bandwidth("bc-spup", column_vector(16).datatype, window=20)
        large = measure_bandwidth("bc-spup", column_vector(512).datatype, window=20)
        assert large > small


class TestAlltoall:
    def test_alltoall_time_scales(self):
        small = measure_alltoall("bc-spup", fig10_struct(2048).datatype, nranks=4, iters=1)
        large = measure_alltoall("bc-spup", fig10_struct(16384).datatype, nranks=4, iters=1)
        assert large > small


class TestOverlap:
    def test_generic_hides_nothing(self):
        w = column_vector(1024)
        rep = measure_overlap("generic", w.datatype)
        assert rep.pack_hidden_fraction == pytest.approx(0.0, abs=0.02)
        assert rep.unpack_hidden_fraction == pytest.approx(0.0, abs=0.02)

    def test_bcspup_hides_pack(self):
        w = column_vector(1024)
        rep = measure_overlap("bc-spup", w.datatype)
        assert rep.pack_hidden_fraction > 0.2

    def test_rwgup_hides_unpack(self):
        w = column_vector(1024)
        rep = measure_overlap("rwg-up", w.datatype)
        assert rep.pack_us == 0.0  # no sender-side copy at all
        assert rep.unpack_hidden_fraction > 0.2

    def test_multiw_copies_nothing(self):
        w = column_vector(1024)
        rep = measure_overlap("multi-w", w.datatype)
        assert rep.pack_us == 0.0
        assert rep.unpack_us == 0.0

    def test_describe_readable(self):
        w = column_vector(256)
        text = measure_overlap("bc-spup", w.datatype).describe()
        assert "bc-spup" in text and "hidden" in text
